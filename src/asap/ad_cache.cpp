#include "asap/ad_cache.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace asap::ads {

AdCache::AdCache(std::uint32_t capacity) : capacity_(capacity) {}

std::uint64_t AdCache::prefilter_for(const AdPayload& ad) const {
  if (ad.filter.params() != canonical_) return ~0ULL;
  return ad.filter.fold();
}

void AdCache::fold_count_add(std::uint64_t word) {
  if (word == 0) return;
  if (!fold_count_) {
    fold_count_ = std::make_unique<std::array<std::uint32_t, 64>>();
    fold_count_->fill(0);
  }
  while (word != 0) {
    ++(*fold_count_)[static_cast<std::size_t>(std::countr_zero(word))];
    word &= word - 1;
  }
}

void AdCache::fold_count_remove(std::uint64_t word) {
  if (word == 0) return;
  ASAP_DCHECK(fold_count_ != nullptr);
  while (word != 0) {
    auto& c =
        (*fold_count_)[static_cast<std::size_t>(std::countr_zero(word))];
    ASAP_DCHECK(c > 0);
    --c;
    word &= word - 1;
  }
}

void AdCache::set_payload(std::size_t idx, AdPayloadPtr ad) {
  const std::uint64_t pre = prefilter_for(*ad);
  fold_count_remove(prefilter_[idx]);
  fold_count_add(pre);
  prefilter_[idx] = pre;
  entries_[idx].ad = std::move(ad);
}

AdCache::PutResult AdCache::put(AdPayloadPtr ad, double now, Rng& rng) {
  ASAP_DCHECK(ad != nullptr);
  // Capacity 0 = caching disabled: nothing is stored, nothing is evicted,
  // and no randomness is consumed.
  if (capacity_ == 0) return {};
  const NodeId src = ad->source;
  if (!struck_.empty()) {
    if (const double* until = struck_.find(src)) {
      if (now < *until) return {};  // re-admission backoff: drop
      struck_.erase(src);
    }
  }
  bool readmitted = false;
  if (!quar_.empty()) {
    if (const Quarantine* q = quar_.find(src)) {
      if (now < q->until) return {};  // quarantined: drop silently
      // Sentence served: re-admit, but remember the offense count so a
      // repeat offender's next quarantine doubles.
      readmitted = true;
    }
  }
  bool implausible = false;
  if (fill_gate_ > 0.0f) {
    // Plausibility gate: a filter claiming more bits than the honest
    // keyword capacity can set is a polluted ad. Admit it, but fully
    // distrusted — confirm probes go to honest sources first, and the
    // first wasted probe quarantines. popcount() is a maintained field,
    // so this costs one multiply per put.
    const auto bits = static_cast<double>(ad->filter.params().bits);
    implausible =
        static_cast<double>(ad->filter.popcount()) > fill_gate_ * bits;
  }
  if (const std::uint32_t* idxp = pos_.find(src)) {
    const std::uint32_t idx = *idxp;
    PutResult r;
    r.implausible = implausible;
    // Never downgrade to an older version (walk revisits can deliver the
    // same ad twice; late full ads can race a newer patch).
    if (ad->version >= entries_[idx].ad->version) {
      // A full ad is also the new delta base.
      entries_[idx].base = ad;
      set_payload(idx, std::move(ad));
      // A fresh ad is evidence the source is alive and advertising.
      entries_[idx].timeout_strikes = 0;
      r.stored = true;
    }
    // The gate's verdict is about the source, not this ad instance: even
    // a stale stuffed delivery collapses the entry's trust.
    if (implausible) entries_[idx].trust = 0.0;
    entries_[idx].touch = now;
    return r;
  }
  PutResult r;
  r.readmitted = readmitted;
  r.implausible = implausible;
  if (entries_.size() >= capacity_) {
    evict_one(rng);
    r.evicted = true;
  }
  pos_.emplace(src, static_cast<std::uint32_t>(entries_.size()));
  const std::uint64_t pre = prefilter_for(*ad);
  fold_count_add(pre);
  sources_.push_back(src);
  Entry entry;
  entry.base = ad;
  entry.ad = std::move(ad);
  entry.touch = now;
  if (implausible) entry.trust = 0.0;
  entries_.push_back(std::move(entry));
  prefilter_.push_back(pre);
  r.stored = true;
  return r;
}

UpdateOutcome AdCache::apply_patch(NodeId source, std::uint32_t base_version,
                                   const AdPayloadPtr& next, double now) {
  const std::uint32_t* idxp = pos_.find(source);
  if (idxp == nullptr) return UpdateOutcome::kMissing;
  const std::uint32_t idx = *idxp;
  auto& entry = entries_[idx];
  if (entry.ad->version == base_version) {
    set_payload(idx, next);
    entry.touch = now;
    return UpdateOutcome::kApplied;
  }
  if (entry.ad->version >= next->version) return UpdateOutcome::kIgnoredStale;
  erase_at(idx);  // stale beyond repair
  return UpdateOutcome::kInvalidated;
}

UpdateOutcome AdCache::on_refresh(NodeId source, std::uint32_t version,
                                  double now) {
  const std::uint32_t* idxp = pos_.find(source);
  if (idxp == nullptr) return UpdateOutcome::kMissing;
  const std::uint32_t idx = *idxp;
  auto& entry = entries_[idx];
  if (entry.ad->version == version) {
    entry.touch = now;
    return UpdateOutcome::kApplied;
  }
  if (entry.ad->version < version) {
    erase_at(idx);
    return UpdateOutcome::kInvalidated;
  }
  return UpdateOutcome::kIgnoredStale;
}

UpdateOutcome AdCache::apply_delta(NodeId source,
                                   std::uint32_t base_full_version,
                                   std::span<const std::uint32_t> toggles,
                                   const AdPayloadPtr& next, double now) {
  const std::uint32_t* idxp = pos_.find(source);
  if (idxp == nullptr) return UpdateOutcome::kMissing;
  const std::uint32_t idx = *idxp;
  auto& entry = entries_[idx];
  if (entry.ad->version >= next->version) return UpdateOutcome::kIgnoredStale;
  if (entry.base && entry.base->version == base_full_version) {
#ifdef ASAP_AUDIT_FORCE_ON
    // Oracle: the toggles really do rebuild `next` from the remembered
    // base — the wire body and the canonical payload must agree.
    bloom::BloomFilter rebuilt = entry.base->filter;
    for (const auto p : toggles) rebuilt.toggle(p);
    ASAP_CHECK(rebuilt == next->filter);
#else
    (void)toggles;
#endif
    set_payload(idx, next);
    entry.touch = now;
    return UpdateOutcome::kApplied;
  }
  erase_at(idx);  // base lost or mismatched: re-learn from a full ad
  return UpdateOutcome::kInvalidated;
}

bool AdCache::erase(NodeId source) {
  const std::uint32_t* idxp = pos_.find(source);
  if (idxp == nullptr) return false;
  erase_at(*idxp);
  return true;
}

bool AdCache::erase_stale(NodeId source, double now) {
  if (readmit_backoff_ > 0.0) struck_[source] = now + readmit_backoff_;
  return erase(source);
}

bool AdCache::readmit_blocked(NodeId source, double now) const {
  const double* until = struck_.find(source);
  return until != nullptr && now < *until;
}

void AdCache::erase_at(std::size_t idx) {
  ASAP_DCHECK(idx < entries_.size());
  fold_count_remove(prefilter_[idx]);
  pos_.erase(sources_[idx]);
  const std::size_t last = entries_.size() - 1;
  if (idx != last) {
    // Swap-with-back across every parallel array, then repoint the moved
    // source's index — the arrays and pos_ must never disagree.
    sources_[idx] = sources_[last];
    entries_[idx] = std::move(entries_[last]);
    prefilter_[idx] = prefilter_[last];
    pos_[sources_[idx]] = static_cast<std::uint32_t>(idx);
  }
  sources_.pop_back();
  entries_.pop_back();
  prefilter_.pop_back();
}

const AdCache::Entry* AdCache::find(NodeId source) const {
  const std::uint32_t* idxp = pos_.find(source);
  return idxp == nullptr ? nullptr : &entries_[*idxp];
}

void AdCache::touch(NodeId source, double now) {
  const std::uint32_t* idxp = pos_.find(source);
  if (idxp != nullptr) entries_[*idxp].touch = now;
}

std::uint32_t AdCache::record_timeout(NodeId source) {
  const std::uint32_t* idxp = pos_.find(source);
  if (idxp == nullptr) return 0;
  return ++entries_[*idxp].timeout_strikes;
}

void AdCache::reset_timeouts(NodeId source) {
  const std::uint32_t* idxp = pos_.find(source);
  if (idxp != nullptr) entries_[*idxp].timeout_strikes = 0;
}

std::uint32_t AdCache::record_timeout(NodeId source, double chain_start,
                                      double chain_end) {
  const std::uint32_t* idxp = pos_.find(source);
  if (idxp == nullptr) return 0;
  Entry& entry = entries_[*idxp];
  if (strike_per_chain_ && chain_start < entry.strike_chain_end) {
    // This chain overlaps the one that produced the last counted strike:
    // same evidence window, no double-count.
    return entry.timeout_strikes;
  }
  entry.strike_chain_end = chain_end;
  return ++entry.timeout_strikes;
}

void AdCache::set_trust_params(double reward, double decay, double threshold,
                               double backoff) {
  trust_enabled_ = true;
  trust_reward_ = reward;
  trust_decay_ = decay;
  trust_threshold_ = threshold;
  quarantine_backoff_ = backoff;
}

double AdCache::trust_of(NodeId source) const {
  if (!trust_enabled_) return 1.0;
  const std::uint32_t* idxp = pos_.find(source);
  return idxp == nullptr ? 1.0 : entries_[*idxp].trust;
}

void AdCache::record_reward(NodeId source) {
  if (!trust_enabled_) return;
  const std::uint32_t* idxp = pos_.find(source);
  if (idxp == nullptr) return;
  Entry& entry = entries_[*idxp];
  entry.trust += trust_reward_ * (1.0 - entry.trust);
}

bool AdCache::record_strike(NodeId source, double now) {
  if (!trust_enabled_) return false;
  const std::uint32_t* idxp = pos_.find(source);
  if (idxp == nullptr) return false;
  Entry& entry = entries_[*idxp];
  entry.trust *= trust_decay_;
  if (entry.trust >= trust_threshold_) return false;
  quarantine_source(source, now);
  return true;
}

void AdCache::quarantine_source(NodeId source, double now) {
  // Block re-admission with exponential backoff per repeat offense (cap
  // the shift so the window stays finite), and drop the cached entry.
  Quarantine q;
  if (const Quarantine* prev = quar_.find(source)) q = *prev;
  const double scale =
      static_cast<double>(1ULL << std::min<std::uint32_t>(q.offenses, 6));
  q.until = now + quarantine_backoff_ * scale;
  ++q.offenses;
  quar_[source] = q;
  if (const std::uint32_t* idxp = pos_.find(source)) erase_at(*idxp);
}

bool AdCache::quarantined(NodeId source, double now) const {
  if (quar_.empty()) return false;
  const Quarantine* q = quar_.find(source);
  return q != nullptr && now < q->until;
}

std::uint64_t AdCache::memory_bytes() const {
  return sources_.capacity() * sizeof(NodeId) +
         entries_.capacity() * sizeof(Entry) +
         prefilter_.capacity() * sizeof(std::uint64_t) +
         (fold_count_ ? sizeof(*fold_count_) : 0) + pos_.memory_bytes() +
         struck_.memory_bytes() + quar_.memory_bytes();
}

void AdCache::evict_one(Rng& rng) {
  if (entries_.empty()) return;
  // Sampled LRU: evict the stalest of up to 8 random entries.
  constexpr std::size_t kSamples = 8;
  if (entries_.size() <= kSamples) {
    // The sample budget covers the whole cache: scan it exactly. Random
    // sampling here would draw duplicates and could miss the true LRU
    // entry (and would burn RNG draws for nothing).
    std::size_t victim = 0;
    for (std::size_t idx = 1; idx < entries_.size(); ++idx) {
      if (entries_[idx].touch < entries_[victim].touch) victim = idx;
    }
    erase_at(victim);
    return;
  }
  std::size_t victim = rng.below(entries_.size());
  double oldest = entries_[victim].touch;
  for (std::size_t s = 1; s < kSamples; ++s) {
    const std::size_t idx = rng.below(entries_.size());
    if (entries_[idx].touch < oldest) {
      oldest = entries_[idx].touch;
      victim = idx;
    }
  }
  erase_at(victim);
}

void AdCache::collect_matches(std::span<const KeywordId> terms,
                              std::vector<AdPayloadPtr>& out) const {
  out.clear();
  if (terms.empty()) return;
  for (const Entry& entry : entries_) {
    if (entry.ad->filter.contains_all(terms)) out.push_back(entry.ad);
  }
}

void AdCache::collect_for_reply(std::span<const KeywordId> terms,
                                const std::vector<TopicId>& interests,
                                std::uint32_t max_ads,
                                std::uint32_t max_topical,
                                std::vector<AdPayloadPtr>& out) const {
  out.clear();
  // Pass 1: ads that already satisfy the query terms.
  for (const Entry& entry : entries_) {
    if (out.size() >= max_ads) return;
    if (!terms.empty() && entry.ad->filter.contains_all(terms)) {
      out.push_back(entry.ad);
    }
  }
  // Pass 2: up to max_topical ads topically relevant to the requester.
  std::uint32_t topical = 0;
  for (const Entry& entry : entries_) {
    if (out.size() >= max_ads || topical >= max_topical) return;
    if (!terms.empty() && entry.ad->filter.contains_all(terms)) {
      continue;  // already included
    }
    if (topics_overlap(entry.ad->topics, interests)) {
      out.push_back(entry.ad);
      ++topical;
    }
  }
}

std::size_t AdCache::order_terms(
    const bloom::HashedQuery& query,
    std::array<std::uint8_t, kMaxOrderedTerms>& order) const {
  const std::size_t n = query.size();
  if (n > kMaxOrderedTerms) return 0;  // oversized query: natural order
  const auto keys = query.keys();
  std::array<std::uint32_t, kMaxOrderedTerms> selectivity{};
  for (std::size_t t = 0; t < n; ++t) {
    // At most fold_count_[j] entries have fold bit j, so the rarest bit of
    // the term's mask bounds how many entries the term can match. A null
    // array reads as all-zero counts.
    std::uint64_t mask = keys[t].fold_mask();
    std::uint32_t s = ~0U;
    if (fold_count_) {
      while (mask != 0) {
        const auto b = static_cast<std::size_t>(std::countr_zero(mask));
        s = std::min(s, (*fold_count_)[b]);
        mask &= mask - 1;
      }
    } else if (mask != 0) {
      s = 0;
    }
    selectivity[t] = s;
    order[t] = static_cast<std::uint8_t>(t);
  }
  std::sort(order.begin(), order.begin() + n,
            [&selectivity](std::uint8_t a, std::uint8_t b) {
              if (selectivity[a] != selectivity[b]) {
                return selectivity[a] < selectivity[b];
              }
              return a < b;  // deterministic tie-break
            });
  return n;
}

bool AdCache::entry_matches(std::size_t idx, const bloom::HashedQuery& query,
                            std::span<const std::uint8_t> order) const {
  const bloom::BloomFilter& filter = entries_[idx].ad->filter;
  if (filter.params() != query.params()) {
    return filter.contains_all(query.terms());
  }
  const auto words = filter.words();
  const auto keys = query.keys();
  if (order.empty()) {
    for (const bloom::HashedKey& k : keys) {
      if (!k.present_in(words)) return false;
    }
    return true;
  }
  for (const std::uint8_t t : order) {
    if (!keys[t].present_in(words)) return false;
  }
  return true;
}

void AdCache::collect_matches(const bloom::HashedQuery& query,
                              std::vector<AdPayloadPtr>& out) const {
  out.clear();
  if (!query.empty()) {
    std::array<std::uint8_t, kMaxOrderedTerms> order_buf;
    const std::size_t ordered = order_terms(query, order_buf);
    const std::span<const std::uint8_t> order{order_buf.data(), ordered};
    const std::uint64_t need = query.fold_mask_all();
    const bool prefilter_ok = query.params() == canonical_;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (prefilter_ok && (prefilter_[i] & need) != need) continue;
      if (entry_matches(i, query, order)) out.push_back(entries_[i].ad);
    }
  }
#ifdef ASAP_AUDIT_FORCE_ON
  // Oracle: the hashed scan must reproduce the legacy scan exactly,
  // including output order.
  std::vector<AdPayloadPtr> legacy;
  collect_matches(query.terms(), legacy);
  ASAP_CHECK(legacy == out);
#endif
}

void AdCache::collect_for_reply(const bloom::HashedQuery& query,
                                const std::vector<TopicId>& interests,
                                std::uint32_t max_ads,
                                std::uint32_t max_topical,
                                std::vector<AdPayloadPtr>& out) const {
  out.clear();
  std::array<std::uint8_t, kMaxOrderedTerms> order_buf;
  const std::size_t ordered = order_terms(query, order_buf);
  const std::span<const std::uint8_t> order{order_buf.data(), ordered};
  const std::uint64_t need = query.fold_mask_all();
  const bool prefilter_ok = query.params() == canonical_;
  const auto matches = [&](std::size_t i) {
    if (prefilter_ok && (prefilter_[i] & need) != need) return false;
    return entry_matches(i, query, order);
  };
  // Pass 1: ads that already satisfy the query terms.
  bool truncated = false;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out.size() >= max_ads) {
      truncated = true;
      break;
    }
    if (!query.empty() && matches(i)) out.push_back(entries_[i].ad);
  }
  // Pass 2: up to max_topical ads topically relevant to the requester.
  if (!truncated) {
    std::uint32_t topical = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (out.size() >= max_ads || topical >= max_topical) break;
      if (!query.empty() && matches(i)) continue;  // already included
      if (topics_overlap(entries_[i].ad->topics, interests)) {
        out.push_back(entries_[i].ad);
        ++topical;
      }
    }
  }
#ifdef ASAP_AUDIT_FORCE_ON
  std::vector<AdPayloadPtr> legacy;
  collect_for_reply(query.terms(), interests, max_ads, max_topical, legacy);
  ASAP_CHECK(legacy == out);
#endif
}

}  // namespace asap::ads
