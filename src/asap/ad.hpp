// Advertisement representation (paper §III-B).
//
// An ad is a tuple (I, C, T, v): source identity, content information,
// topic set, and a version number. Four kinds exist:
//   * full ad    — complete content Bloom filter,
//   * patch ad   — changed bit positions since the previous version,
//   * refresh ad — header only (liveness + version beacon),
//   * delta ad   — changed bit positions since the last *full* ad (a
//     stable base, so consecutive deltas are independently applicable;
//     losing one does not break the chain the way a missed patch does).
//
// Payloads are immutable and shared: the system keeps exactly one
// AdPayload object per (source, version); every cache that holds that
// version of the ad points at the same object (a cacher that applies a
// patch reconstructs bit-identical content, so it simply adopts the new
// canonical payload). This keeps memory linear in the number of *versions*
// rather than the number of cache entries.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bloom/bloom.hpp"
#include "common/types.hpp"
#include "sim/size_model.hpp"

namespace asap::ads {

enum class AdKind : std::uint8_t { kFull, kPatch, kRefresh, kDelta };

const char* ad_kind_name(AdKind k);

struct AdPayload {
  NodeId source = kInvalidNode;
  std::uint32_t version = 0;
  bloom::BloomFilter filter;
  std::vector<TopicId> topics;  // sorted

  AdPayload(NodeId src, std::uint32_t ver, bloom::BloomFilter f,
            std::vector<TopicId> t)
      : source(src), version(ver), filter(std::move(f)), topics(std::move(t)) {}
};

using AdPayloadPtr = std::shared_ptr<const AdPayload>;

/// Wire size of a full ad: header + topic list + compressed filter.
Bytes full_ad_bytes(const AdPayload& ad, const sim::SizeModel& sizes);

/// Wire size of a patch ad with the given number of changed positions.
Bytes patch_ad_bytes(std::size_t toggled_positions, std::size_t topics,
                     const sim::SizeModel& sizes);

/// Wire size of a refresh ad (header only).
Bytes refresh_ad_bytes(const sim::SizeModel& sizes);

/// Wire size of a delta ad: a patch ad plus the base-full-version varint.
Bytes delta_ad_bytes(std::size_t toggled_positions, std::size_t topics,
                     const sim::SizeModel& sizes);

/// True iff the two sorted topic vectors intersect.
bool topics_overlap(const std::vector<TopicId>& a,
                    const std::vector<TopicId>& b);

}  // namespace asap::ads
