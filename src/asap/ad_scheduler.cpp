#include "asap/ad_scheduler.hpp"

namespace asap::ads {

AdScheduler::AdScheduler(AdSchedulerParams params) : params_(params) {
  if (params_.round_budget == 0) params_.round_budget = 1;
  if (params_.very_stable_after < params_.stable_after) {
    params_.very_stable_after = params_.stable_after;
  }
}

std::uint32_t AdScheduler::stride(const Slot& s) const {
  if (s.stable_emits >= params_.very_stable_after) return 4;
  if (s.stable_emits >= params_.stable_after) return 2;
  return 1;
}

bool AdScheduler::eligible(const Slot& s) const {
  return !s.ever_emitted || round_ - s.last_emit_round >= stride(s);
}

void AdScheduler::upsert(ItemId id, Bytes bytes, bool urgent) {
  auto it = pos_.find(id);
  if (it == pos_.end()) {
    pos_.emplace(id, static_cast<std::uint32_t>(ring_.size()));
    Slot s;
    s.id = id;
    s.bytes = bytes;
    s.urgent = urgent;
    ring_.push_back(s);
    total_bytes_ += bytes;
    if (urgent) urgent_fifo_.push_back(id);
    return;
  }
  Slot& s = ring_[it->second];
  total_bytes_ += bytes;
  total_bytes_ -= s.bytes;
  s.bytes = bytes;
  if (urgent) {
    s.stable_emits = 0;
    if (!s.urgent) {
      s.urgent = true;
      urgent_fifo_.push_back(id);
    }
  }
}

void AdScheduler::touch_changed(ItemId id) {
  auto it = pos_.find(id);
  if (it == pos_.end()) return;
  ring_[it->second].stable_emits = 0;
}

bool AdScheduler::erase(ItemId id) {
  auto it = pos_.find(id);
  if (it == pos_.end()) return false;
  const std::size_t idx = it->second;
  total_bytes_ -= ring_[idx].bytes;
  pos_.erase(it);
  ring_.erase(ring_.begin() + static_cast<std::ptrdiff_t>(idx));
  for (std::size_t i = idx; i < ring_.size(); ++i) {
    pos_[ring_[i].id] = static_cast<std::uint32_t>(i);
  }
  // Stale urgent_fifo_ entries for this id are skipped lazily.
  if (idx < cursor_) --cursor_;
  if (cursor_ >= ring_.size()) cursor_ = 0;
  return true;
}

AdScheduler::RoundPlan AdScheduler::next_round(std::vector<Emission>& out) {
  out.clear();
  RoundPlan plan;
  ++round_;
  if (ring_.empty()) {
    urgent_fifo_.clear();
    return plan;
  }

  const Bytes budget = params_.round_budget;
  const Bytes urgent_cap = (budget + 1) / 2;
  Bytes used = 0;
  bool packed_any = false;

  const auto emit = [&](Slot& s, bool as_urgent) {
    out.push_back(Emission{s.id, as_urgent});
    used += s.bytes;
    plan.bytes += s.bytes;
    s.last_emit_round = round_;
    s.ever_emitted = true;
    packed_any = true;
  };

  // Phase A: urgent FIFO — new/changed ads jump the rotation. The first
  // urgent item always packs; afterwards urgents only pack while they fit
  // the half-budget cap, leaving the other half to the rotation.
  while (!urgent_fifo_.empty()) {
    const ItemId id = urgent_fifo_.front();
    const auto it = pos_.find(id);
    if (it == pos_.end() || !ring_[it->second].urgent) {
      urgent_fifo_.pop_front();  // erased item or duplicate queue entry
      continue;
    }
    Slot& s = ring_[it->second];
    if (packed_any && used + s.bytes > urgent_cap) break;  // spills
    urgent_fifo_.pop_front();
    s.urgent = false;
    s.stable_emits = 0;
    emit(s, true);
  }

  // Phase B: rotation walk from the persistent cursor. Ineligible and
  // urgent-flagged slots are skipped for free; the first eligible misfit
  // stops the walk with the cursor parked on it (spill). The first
  // rotation emission always packs so persistent urgent traffic cannot
  // starve an oversized stable ad.
  const std::size_t n = ring_.size();
  bool rotated = false;
  for (std::size_t step = 0; step < n; ++step) {
    if (cursor_ >= n) cursor_ = 0;
    Slot& s = ring_[cursor_];
    if (s.urgent || !eligible(s)) {
      cursor_ = (cursor_ + 1) % n;
      continue;
    }
    if (rotated && used + s.bytes > budget) break;
    emit(s, false);
    rotated = true;
    ++s.stable_emits;
    cursor_ = (cursor_ + 1) % n;
  }

  plan.emitted = static_cast<std::uint32_t>(out.size());
  for (const Slot& s : ring_) {
    if (s.urgent || eligible(s)) ++plan.spilled;
  }
  return plan;
}

std::uint32_t AdScheduler::stride_of(ItemId id) const {
  const auto it = pos_.find(id);
  return it == pos_.end() ? 0 : stride(ring_[it->second]);
}

std::uint32_t AdScheduler::stable_emits_of(ItemId id) const {
  const auto it = pos_.find(id);
  return it == pos_.end() ? 0 : ring_[it->second].stable_emits;
}

bool AdScheduler::urgent_pending(ItemId id) const {
  const auto it = pos_.find(id);
  return it != pos_.end() && ring_[it->second].urgent;
}

}  // namespace asap::ads
