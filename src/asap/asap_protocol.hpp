// ASAP: the advertisement-based search protocol (paper §III).
//
// Nodes proactively advertise their content (full / patch / refresh ads,
// disseminated by a configurable forwarding scheme — flooding, random walk
// or GSA, giving the paper's ASAP(FLD)/ASAP(RW)/ASAP(GSA) variants) and
// selectively cache interesting ads from other peers. A search first scans
// the local ads cache; every matching ad triggers a one-hop content
// confirmation with the ad's source. If nothing matches (or nothing
// confirms), the node requests topical ads from neighbors within h hops,
// merges the replies, and retries once — the same warm-up path a freshly
// joined node uses (paper Table I).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "asap/ad.hpp"
#include "asap/ad_cache.hpp"
#include "asap/ad_scheduler.hpp"
#include "asap/advertiser.hpp"
#include "search/algorithm.hpp"
#include "search/baseline.hpp"
#include "search/context.hpp"

namespace asap::ads {

/// Advertisement scheduling mode.
///   kVanilla  — the paper's behaviour: every change ships immediately,
///               refresh beacons fire every period (bit-identical legacy).
///   kAdaptive — timer ticks become ad *rounds*: an AdScheduler rotates a
///               change item (urgent, coalesces all changes since the last
///               round into one patch) and a refresh beacon (decays to
///               every 2nd/4th round once stable) into one byte-budgeted
///               packed frame per round.
///   kDelta    — kAdaptive, but changes ship as delta ads against the last
///               *full* ad: consecutive deltas are independently
///               applicable, so a lost frame does not invalidate cachers
///               the way a missed version-chained patch does.
enum class AdMode : std::uint8_t { kVanilla, kAdaptive, kDelta };

struct AsapParams {
  /// Ad forwarding scheme: ASAP(FLD) / ASAP(RW) / ASAP(GSA).
  search::Scheme scheme = search::Scheme::kRandomWalk;
  std::uint32_t flood_ttl = 6;        // full/patch ad floods (ASAP(FLD))
  std::uint32_t refresh_flood_ttl = 3;  // refresh beacons flood shallower
  std::uint32_t walkers = 5;

  /// Budget unit M0: one full-ad delivery gets |T(a)| * M0 messages
  /// (paper §IV-A; applies to the RW and GSA schemes).
  std::uint64_t budget_unit_m0 = 3'000;
  /// Upper bound on a single ad-delivery walk; larger budgets run more
  /// walkers in parallel. Bounds the virtual-time span of one delivery
  /// (~max_walk_hops * mean hop latency) so deliveries finish promptly.
  std::uint64_t max_walk_hops = 600;
  /// Budget scale for full ads sent after warm-up (joins, large changes).
  double join_budget_scale = 0.05;
  /// Budget scale for patch-ad deliveries.
  double patch_budget_scale = 0.25;
  /// Budget scale for refresh-ad deliveries.
  double refresh_budget_scale = 0.08;
  /// Refresh beacon period per sharing node (with +-50% jitter).
  Seconds refresh_period = 120.0;

  std::uint32_t ads_request_hops = 1;  // h (paper default 1)
  std::uint32_t ads_reply_max = 16;    // cap on ads per failure-path reply
  /// Topical (non-term-matching) ads per failure-path reply.
  std::uint32_t ads_reply_topical_max = 8;
  /// Cap on ads per reply to a join-time warm-up request (no query terms,
  /// so the whole reply is topical bulk).
  std::uint32_t join_reply_max = 64;
  std::uint32_t cache_capacity = 1'500;
  std::uint32_t max_confirms = 8;      // confirmations per lookup round
  /// Positive confirmations the requester wants (paper Table I: "if more
  /// responses needed" widens the search with an ads request even after a
  /// local hit).
  std::uint32_t results_needed = 1;
  /// Patches larger than this many toggled positions ship as full ads.
  std::uint32_t patch_to_full_threshold = 1'024;
  /// Extension (off by default, ablation bench): an interested node that
  /// receives a refresh for an ad it does not cache pulls the full ad
  /// directly from the source.
  bool refresh_pull = false;
  /// Extension (1.0 = off): with the RW scheme, ad-delivery walkers pick
  /// the next hop with this relative preference for neighbors whose
  /// interests overlap the ad's topics — steering ads toward their
  /// consumers, exploiting the interest clustering of §III-A.
  double interest_bias = 1.0;

  // --- fault-hardening knobs (defaults reproduce legacy behaviour) -------
  /// Confirm attempts per candidate source; 1 = no retries (legacy). The
  /// harness raises this under fault scenarios (faults/fault_config.hpp).
  std::uint32_t confirm_max_attempts = 1;
  /// Consecutive confirm timeouts before the cached ad is evicted as
  /// stale; 1 = legacy behaviour (first timeout evicts).
  std::uint32_t stale_timeout_strikes = 1;
  /// Base backoff before a confirm retry: attempt k (k >= 2) starts
  /// backoff * 2^(k-2) seconds after the previous attempt's timeout.
  Seconds confirm_retry_backoff = 1.0;
  /// Byte budget for confirm retries per confirm round (0 = unlimited),
  /// so total-loss scenarios terminate with bounded cost.
  Bytes confirm_retry_budget = 4'096;

  // --- adaptive advertisement scheduling (kVanilla = legacy) ------------
  AdMode ad_mode = AdMode::kVanilla;
  /// Byte budget one packed ad-round frame may fill (adaptive/delta). The
  /// refresh period doubles as the round period.
  Bytes ad_round_budget = 1'200;
  /// Unchanged emissions before an ad decays to every 2nd / every 4th
  /// round (AdSchedulerParams).
  std::uint32_t ad_stable_after = 2;
  std::uint32_t ad_very_stable_after = 4;
  /// Re-admission backoff after a stale-strike eviction: the evicted
  /// source's ads are dropped for this long so an in-flight walker cannot
  /// re-admit the just-evicted stale ad in the same tick. 0 = legacy.
  Seconds stale_readmit_backoff = 0.0;

  // --- adversarial defense (defaults reproduce legacy behaviour) ---------
  /// Per-source trust scoring on cached ads (AdCache::set_trust_params):
  /// confirmed hits reward, false positives and timed-out confirm chains
  /// strike; entries below the threshold are quarantined with exponential
  /// re-admit backoff. Off = legacy (no trust reads, no extra draws).
  bool trust_enabled = false;
  double trust_reward = 0.3;
  double trust_strike_decay = 0.5;
  double trust_quarantine_threshold = 0.2;
  Seconds trust_quarantine_backoff = 120.0;
  /// Ad-admission plausibility gate (AdCache::set_fill_gate): reject and
  /// quarantine sources whose ads fill more of the Bloom filter than the
  /// design keyword capacity can honestly set. 0 = off (legacy).
  double trust_fill_gate = 0.0;
  /// One stale strike per confirm attempt chain (fixes double-counting
  /// when overlapping queries confirm the same source). Off = legacy.
  bool strike_per_chain = false;
  /// Bounded per-origin pending-query queue: a query arriving while this
  /// many are already in flight at its origin is shed (fails immediately,
  /// zero protocol cost). 0 = unbounded (legacy).
  std::uint32_t pending_query_cap = 0;
  /// Pending depth at which the search degrades gracefully: phase-2
  /// ads-requests are suppressed (TTL clamp-down). 0 = never clamp.
  std::uint32_t ttl_clamp_depth = 0;

  static AsapParams small(search::Scheme s);
  static AsapParams paper(search::Scheme s);
};

class AsapProtocol final : public search::SearchAlgorithm {
 public:
  AsapProtocol(search::Ctx& ctx, AsapParams params);

  std::string name() const override;
  void warm_up(Seconds duration) override;
  void on_trace_event(const trace::TraceEvent& event) override;
  std::uint64_t state_bytes() const override;

  // --- introspection (tests, examples) ---------------------------------
  const AdCache& cache(NodeId n) const { return caches_[n]; }
  const Advertiser& advertiser(NodeId n) const { return advertisers_[n]; }

  struct Counters {
    std::uint64_t full_ads = 0;
    std::uint64_t patch_ads = 0;
    std::uint64_t refresh_ads = 0;
    std::uint64_t ads_requests = 0;
    std::uint64_t confirm_requests = 0;
    std::uint64_t refresh_pulls = 0;
    // Fault-hardening telemetry (zero in legacy configurations except
    // confirm_timeouts / stale_evictions, which also count the legacy
    // dead-source path).
    std::uint64_t confirm_retries = 0;
    std::uint64_t confirm_timeouts = 0;
    std::uint64_t stale_evictions = 0;
    /// Queries whose ads-request refetch restored at least one cache entry
    /// after a stale eviction in the same query (time-to-repair events).
    std::uint64_t repair_refetches = 0;
    Bytes retry_bytes = 0;  ///< bandwidth spent on confirm retries
    double repair_seconds_sum = 0.0;  ///< sum over repair_refetches
    // Adaptive-scheduling telemetry (all zero in vanilla mode).
    std::uint64_t ad_rounds = 0;       ///< scheduler rounds executed
    std::uint64_t packed_frames = 0;   ///< non-empty frames disseminated
    std::uint64_t packed_entries = 0;  ///< ads shipped inside frames
    std::uint64_t spilled_entries = 0; ///< budget spills carried to next round
    std::uint64_t delta_ads = 0;       ///< delta ads shipped (kDelta mode)
    // Adversarial telemetry (all zero unless Byzantine roles are armed).
    std::uint64_t polluted_ads = 0;     ///< full ads shipped with phantom bits
    std::uint64_t forced_negatives = 0; ///< stale-advertiser confirm replies
    std::uint64_t dropped_confirms = 0; ///< confirm requests silently dropped
    // Defense telemetry (all zero unless trust / overload knobs are on).
    std::uint64_t trust_strikes = 0;
    std::uint64_t quarantines = 0;   ///< quarantine entries (trust collapse)
    std::uint64_t readmissions = 0;  ///< quarantine exits (sentence served)
    std::uint64_t queries_shed = 0;
    std::uint64_t ttl_clamped = 0;   ///< queries whose phase 2 was suppressed
    std::uint64_t peak_pending_depth = 0;
  };
  const Counters& counters() const { return counters_; }
  const AsapParams& params() const { return params_; }

 private:
  std::uint64_t delivery_budget(std::size_t num_topics, double scale) const;

  /// Returns `payload` unless `src` is a seeded polluter, in which case a
  /// copy with deterministic phantom set bits (keyed on source + version,
  /// no RNG-stream draws) is published instead. Polluters only ever ship
  /// full ads — their patches/deltas are forced to full at the call sites
  /// so the delta audit oracle never sees phantom bits.
  AdPayloadPtr maybe_pollute(NodeId src, AdPayloadPtr payload);
  bool is_polluter(NodeId n) const;
  /// Counts a put()'s quarantine re-admission (defense telemetry).
  void note_readmit(NodeId cacher, NodeId source, Seconds t);
  /// Bookkeeping for an ad rejected by the fill-plausibility gate: counts
  /// the strike + quarantine and emits the obs/trace events.
  void note_implausible(NodeId cacher, NodeId source, Seconds t);
  bool overload_enabled() const {
    return params_.pending_query_cap > 0 || params_.ttl_clamp_depth > 0;
  }

  /// Disseminates an ad from `src` starting at `when`.
  /// For patches, `patch_positions`/`base_version` describe the delta.
  void deliver_ad(NodeId src, AdKind kind, Seconds when, double scale,
                  const AdPayloadPtr& payload,
                  std::span<const std::uint32_t> patch_positions,
                  std::uint32_t base_version);

  void on_join(const trace::TraceEvent& ev);
  void on_rejoin(const trace::TraceEvent& ev);
  void on_content_change(const trace::TraceEvent& ev);
  void run_query(const trace::TraceEvent& ev);

  /// Confirms each candidate ad with its source. Returns the earliest
  /// positive-reply time (infinity if none). `resolve` is advanced to the
  /// time the whole round is known to have finished; `rec.results` counts
  /// the positive confirmations.
  Seconds confirm_round(NodeId p, Seconds start,
                        std::span<const KeywordId> terms,
                        std::span<const AdPayloadPtr> candidates,
                        metrics::SearchRecord& rec, Seconds& resolve,
                        std::vector<NodeId>& dead_sources);

  /// Requests ads from neighbors within h hops, merges replies into p's
  /// cache and collects term-matching payloads. The query is pre-hashed
  /// (ctx_.hash_query) so every reply-side cache scan and merge-side match
  /// test reuses the one-shot probe positions; an empty query is the
  /// join-time warm-up request. Ads from `skip_sources` (sources the
  /// requester just observed dead) are not merged. Returns completion time.
  Seconds ads_request_phase(NodeId p, Seconds start,
                            const bloom::HashedQuery& query,
                            metrics::SearchRecord* rec,
                            std::span<const NodeId> skip_sources,
                            std::vector<AdPayloadPtr>& matches_out);

  void schedule_refresh(NodeId n);
  void on_refresh_timer(NodeId n);

  // --- adaptive mode (ad_mode != kVanilla) ------------------------------
  /// One planned entry of a packed ad-round frame.
  struct FrameEntry {
    AdKind kind = AdKind::kRefresh;
    AdPayloadPtr payload;
    std::uint32_t base_version = 0;          // patch / delta entries
    std::vector<std::uint32_t> toggles;      // patch / delta entries
  };

  bool adaptive() const { return params_.ad_mode != AdMode::kVanilla; }
  /// Runs one scheduler round for `n` and ships the resulting frame.
  void run_ad_round(NodeId n);
  /// Disseminates one packed frame (Traffic::kPackedAd) with one walk.
  void deliver_packed(NodeId src, Seconds when, double scale,
                      std::span<const FrameEntry> entries,
                      std::uint32_t spilled);

  /// Scheduler item ids in flat mode: the refresh beacon and the coalesced
  /// pending-change item.
  static constexpr AdScheduler::ItemId kBeaconItem = 0;
  static constexpr AdScheduler::ItemId kChangeItem = 1;

  search::Ctx& ctx_;
  AsapParams params_;
  std::vector<Advertiser> advertisers_;
  std::vector<AdCache> caches_;
  std::vector<std::uint8_t> refresh_scheduled_;
  std::vector<AdScheduler> scheds_;  // per node; empty in vanilla mode
  std::vector<AdScheduler::Emission> emissions_scratch_;
  std::vector<FrameEntry> frame_scratch_;
  Counters counters_;
  std::vector<AdPayloadPtr> scratch_ads_;
  std::vector<AdPayloadPtr> reply_scratch_;
  /// Earliest stale eviction within the current query, for time-to-repair
  /// accounting; reset to +inf at each query start.
  Seconds repair_pending_since_ = 0.0;
  /// Entries the most recent ads_request_phase stored into the requester's
  /// cache (repair evidence).
  std::uint64_t last_request_stored_ = 0;
  /// Per-origin in-flight query completion times (overload protection).
  /// Empty vectors unless pending_query_cap / ttl_clamp_depth is set, so
  /// legacy runs never touch it.
  std::vector<std::vector<Seconds>> pending_;
};

}  // namespace asap::ads
