// Per-node advertised-content state (paper §III-B/C).
//
// Tracks a node's shared keyword multiset in a counting Bloom filter (so
// removals clear bits), the class histogram that defines the node's ad
// topics, the last advertised filter snapshot and the version counter.
// Produces the canonical AdPayload for each new version plus the toggle
// list a patch ad carries.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "asap/ad.hpp"
#include "bloom/bloom.hpp"
#include "common/types.hpp"
#include "trace/classes.hpp"
#include "trace/content_model.hpp"

namespace asap::ads {

class Advertiser {
 public:
  explicit Advertiser(NodeId source,
                      bloom::BloomParams params = bloom::BloomParams{});

  NodeId source() const { return source_; }
  std::uint32_t version() const { return version_; }
  bool has_advertised() const { return payload_ != nullptr; }
  const AdPayloadPtr& payload() const { return payload_; }

  /// True when the node currently shares anything (free-riders have a null
  /// content filter and "have nothing to advertise", §III-B).
  bool has_content() const { return doc_count_ > 0; }

  void add_document(const trace::Document& doc);
  void remove_document(const trace::Document& doc);

  /// Current topic set (classes of the shared documents), sorted.
  std::vector<TopicId> topics() const;

  /// Snapshot the current content into a new version and return its
  /// canonical payload (used for full ads). No-op content still produces a
  /// new version so cachers can resynchronize. Also re-bases delta ads:
  /// the new payload becomes the delta base.
  AdPayloadPtr publish_full();

  /// Snapshot the current content into a new version *without* re-basing:
  /// the delta base stays at the last full ad, so the new version can ship
  /// as a delta ad against a base the cachers already hold.
  AdPayloadPtr publish_update();

  /// Positions that changed since the last published version — the patch
  /// body. Empty if nothing changed.
  std::vector<std::uint32_t> pending_patch() const;

  /// Positions that changed since the last *full* ad — the delta body.
  /// Empty if no full ad was published or nothing changed since it.
  std::vector<std::uint32_t> pending_delta() const;

  /// Version of the last full ad (the delta base); 0 before any full ad.
  std::uint32_t base_version() const {
    return base_payload_ ? base_payload_->version : 0;
  }
  const AdPayloadPtr& base_payload() const { return base_payload_; }

  /// True if any filter bit differs from the advertised snapshot.
  bool dirty() const;

  const bloom::CountingBloomFilter& counting_filter() const {
    return *counting_;
  }

  /// Heap bytes owned by this advertiser: the counting filter plus the
  /// published payload snapshots (each holds its own bitmap copy; the
  /// shared_ptr copies cached elsewhere alias these same blocks, so the
  /// producer is the one place they are counted).
  std::uint64_t memory_bytes() const {
    std::uint64_t total =
        counting_ ? sizeof(*counting_) + counting_->memory_bytes() : 0;
    if (payload_) total += sizeof(AdPayload) + payload_->filter.memory_bytes();
    if (base_payload_ && base_payload_ != payload_) {
      total += sizeof(AdPayload) + base_payload_->filter.memory_bytes();
    }
    return total;
  }

 private:
  NodeId source_;
  bloom::BloomParams params_;
  std::unique_ptr<bloom::CountingBloomFilter> counting_;  // lazily allocated
  std::array<std::uint16_t, trace::kNumClasses> class_counts_{};
  std::uint32_t doc_count_ = 0;
  std::uint32_t version_ = 0;
  AdPayloadPtr payload_;       // canonical payload at `version_`
  AdPayloadPtr base_payload_;  // last *full* ad's payload (delta base)

  void ensure_filter();
};

}  // namespace asap::ads
