// Adaptive advertisement scheduler (serval-dna overlay_advertise style).
//
// Maintains a rotation ring of advertisement items plus an urgent FIFO.
// Each call to next_round() plans one ad round:
//   * phase A drains the urgent FIFO (new/changed ads) first — the first
//     urgent item always packs; further urgents pack while they fit inside
//     half the round budget, so change bursts cannot starve the rotation;
//   * phase B walks the rotation ring from a persistent cursor, emitting
//     every *eligible* item that still fits the byte budget. The first
//     rotation emission always packs (even oversized), so one huge ad can
//     never be starved by a stream of urgent traffic; the first item that
//     does not fit stops the walk and the cursor stays on it — the
//     remainder spills to the next round instead of bursting.
//
// Eligibility implements the multi-round decay: an item that has been
// emitted `stable_after` times without change re-advertises only every 2nd
// round, after `very_stable_after` emissions only every 4th round. An
// urgent upsert or touch_changed() resets the decay, so changed content
// returns to the every-round cadence.
//
// Deterministic by construction: no randomness, no clock — rounds are
// whatever the caller's timer says they are. Fairness contract (property
// test): every live item is emitted at least once per
// 4 * ceil(total_bytes / round_budget) rounds, and urgent emissions always
// precede rotation emissions within a round.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace asap::ads {

struct AdSchedulerParams {
  /// Per-round byte budget one packed ad frame may fill.
  Bytes round_budget = 1'200;
  /// Unchanged emissions before an item decays to an every-2nd-round
  /// cadence, and before it decays further to every 4th round.
  std::uint32_t stable_after = 2;
  std::uint32_t very_stable_after = 4;
};

class AdScheduler {
 public:
  using ItemId = std::uint32_t;

  struct Emission {
    ItemId id = 0;
    bool urgent = false;  ///< emitted from the urgent FIFO (phase A)
  };

  /// What one round did: emissions are appended to the caller's vector.
  struct RoundPlan {
    std::uint32_t emitted = 0;
    /// Items that wanted to go this round (urgent or rotation-eligible)
    /// but did not fit the budget; they carry over to the next round.
    std::uint32_t spilled = 0;
    Bytes bytes = 0;  ///< payload bytes of the emitted items
  };

  explicit AdScheduler(AdSchedulerParams params = {});

  /// Inserts the item or updates its advertised size. `urgent` enqueues it
  /// for the next round's priority phase and resets its stability decay;
  /// a non-urgent upsert of an existing item only updates its size.
  void upsert(ItemId id, Bytes bytes, bool urgent);

  /// Marks the item's content as changed without queue-jumping: the decay
  /// resets so it re-advertises every round again. No-op if absent.
  void touch_changed(ItemId id);

  /// Removes the item, preserving the rotation order of the remainder
  /// (ordered erase — a swap-with-back would teleport an arbitrary item
  /// across the cursor and break the fairness bound).
  bool erase(ItemId id);

  /// Plans the next round. Emissions are written to `out` (cleared first):
  /// urgent emissions first, then rotation emissions in ring order.
  RoundPlan next_round(std::vector<Emission>& out);

  // --- introspection (tests, stats) --------------------------------------
  std::size_t size() const { return ring_.size(); }
  bool empty() const { return ring_.empty(); }
  bool contains(ItemId id) const { return pos_.find(id) != pos_.end(); }
  Bytes total_bytes() const { return total_bytes_; }
  std::uint64_t round() const { return round_; }
  const AdSchedulerParams& params() const { return params_; }
  /// Current re-advertise stride of an item (1, 2 or 4); 0 when absent.
  std::uint32_t stride_of(ItemId id) const;
  /// Consecutive unchanged emissions; 0 when absent or just changed.
  std::uint32_t stable_emits_of(ItemId id) const;
  bool urgent_pending(ItemId id) const;

 private:
  struct Slot {
    ItemId id = 0;
    Bytes bytes = 0;
    std::uint32_t stable_emits = 0;
    std::uint64_t last_emit_round = 0;
    bool urgent = false;
    bool ever_emitted = false;
  };

  std::uint32_t stride(const Slot& s) const;
  bool eligible(const Slot& s) const;

  AdSchedulerParams params_;
  std::vector<Slot> ring_;  // rotation order = insertion order
  std::unordered_map<ItemId, std::uint32_t> pos_;
  /// Urgent queue; entries whose slot was erased or already drained are
  /// skipped lazily at round time.
  std::deque<ItemId> urgent_fifo_;
  std::size_t cursor_ = 0;
  std::uint64_t round_ = 0;
  Bytes total_bytes_ = 0;
};

}  // namespace asap::ads
