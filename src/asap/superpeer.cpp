#include "asap/superpeer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "search/propagation.hpp"

namespace asap::ads {

namespace {
constexpr Seconds kInfTime = std::numeric_limits<Seconds>::infinity();
}

SuperpeerParams SuperpeerParams::small(search::Scheme s) {
  SuperpeerParams p;
  p.scheme = s;
  return p;  // defaults are already sized for the ~2,000-peer preset
}

SuperpeerAsap::SuperpeerAsap(search::Ctx& ctx, SuperpeerParams params)
    : ctx_(ctx),
      params_(params),
      sp_mesh_(overlay::Overlay::edgeless(ctx.model.total_node_slots())) {
  ASAP_REQUIRE(params.superpeer_fraction > 0.0 &&
                   params.superpeer_fraction <= 1.0,
               "superpeer fraction out of (0,1]");
  ASAP_REQUIRE(params.budget_unit_m0 >= 1, "M0 must be positive");
  const auto slots = ctx.model.total_node_slots();
  is_superpeer_.assign(slots, 0);
  proxy_.assign(slots, kInvalidNode);
  advertisers_.reserve(slots);
  caches_.reserve(slots);
  for (NodeId n = 0; n < slots; ++n) {
    advertisers_.emplace_back(n);
    caches_.emplace_back(params.cache_capacity);
  }
  refresh_scheduled_.assign(slots, 0);
  if (params.trust_enabled) {
    for (auto& c : caches_) {
      c.set_trust_params(params.trust_reward, params.trust_strike_decay,
                         params.trust_quarantine_threshold,
                         params.trust_quarantine_backoff);
    }
  }
  if (params.trust_fill_gate > 0.0) {
    for (auto& c : caches_) c.set_fill_gate(params.trust_fill_gate);
  }
  if (overload_enabled()) pending_queries_.resize(slots);
  if (adaptive()) {
    AdSchedulerParams sp;
    sp.round_budget = params.ad_round_budget;
    sp.stable_after = params.ad_stable_after;
    sp.very_stable_after = params.ad_very_stable_after;
    pending_.resize(slots);
    sp_scheds_.assign(slots, AdScheduler(sp));
    round_scheduled_.assign(slots, 0);
  }
  build_hierarchy();
}

std::string SuperpeerAsap::name() const {
  switch (params_.scheme) {
    case search::Scheme::kFlooding:
      return "sp-asap(fld)";
    case search::Scheme::kRandomWalk:
      return "sp-asap(rw)";
    case search::Scheme::kGsa:
      return "sp-asap(gsa)";
  }
  return "sp-asap(?)";
}

void SuperpeerAsap::build_hierarchy() {
  // Promote the top-degree fraction of the initial overlay to superpeers —
  // in deployed systems capable/stable nodes self-select; degree is the
  // observable proxy our simulation has.
  const auto initial = ctx_.model.params().initial_nodes;
  num_superpeers_ = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(
             std::lround(params_.superpeer_fraction * initial)));
  std::vector<NodeId> by_degree(initial);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](NodeId a, NodeId b) {
                     return ctx_.ov.degree(a) > ctx_.ov.degree(b);
                   });
  for (std::uint32_t i = 0; i < num_superpeers_; ++i) {
    is_superpeer_[by_degree[i]] = 1;
  }

  // Superpeer mesh: direct superpeer-superpeer overlay edges, plus edges
  // between superpeers that share a leaf (two-hop adjacency) so sparse
  // topologies stay connected at the top tier.
  for (NodeId n = 0; n < initial; ++n) {
    if (is_superpeer_[n]) {
      for (NodeId nb : ctx_.ov.neighbors(n)) {
        if (nb < n && is_superpeer_[nb]) sp_mesh_.add_edge(n, nb);
      }
    } else {
      const auto nbs = ctx_.ov.neighbors(n);
      for (std::size_t i = 0; i < nbs.size(); ++i) {
        if (!is_superpeer_[nbs[i]]) continue;
        for (std::size_t j = i + 1; j < nbs.size(); ++j) {
          if (is_superpeer_[nbs[j]]) sp_mesh_.add_edge(nbs[i], nbs[j]);
        }
      }
    }
  }

  for (NodeId n = 0; n < initial; ++n) proxy_[n] = assign_proxy(n);
}

NodeId SuperpeerAsap::assign_proxy(NodeId n) {
  if (is_superpeer_[n]) return n;
  // Prefer the highest-degree online superpeer neighbor.
  NodeId best = kInvalidNode;
  std::uint32_t best_degree = 0;
  for (NodeId nb : ctx_.ov.neighbors(n)) {
    if (is_superpeer_[nb] && ctx_.online(nb) &&
        ctx_.ov.degree(nb) >= best_degree) {
      best = nb;
      best_degree = ctx_.ov.degree(nb);
    }
  }
  if (best != kInvalidNode) return best;
  // No adjacent superpeer: pick the latency-closest online one (a
  // bootstrap service would hand this out in a real deployment).
  Seconds best_lat = kInfTime;
  const auto initial = ctx_.model.params().initial_nodes;
  for (NodeId sp = 0; sp < initial; ++sp) {
    if (!is_superpeer_[sp] || !ctx_.online(sp)) continue;
    const Seconds lat = ctx_.latency(n, sp);
    if (lat < best_lat) {
      best_lat = lat;
      best = sp;
    }
  }
  return best;
}

std::uint64_t SuperpeerAsap::delivery_budget(std::size_t topics,
                                             double scale) const {
  const auto t = std::max<std::size_t>(1, topics);
  const double raw = scale * static_cast<double>(t * params_.budget_unit_m0);
  return std::max<std::uint64_t>(
      params_.walkers, static_cast<std::uint64_t>(std::llround(raw)));
}

bool SuperpeerAsap::is_polluter(NodeId n) const {
  return ctx_.faults != nullptr && ctx_.faults->is_polluter(n);
}

AdPayloadPtr SuperpeerAsap::maybe_pollute(NodeId src, AdPayloadPtr payload) {
  if (!is_polluter(src)) return payload;
  auto polluted = std::make_shared<AdPayload>(*payload);
  // Phantom bits are a pure function of (source, version) — identical to
  // the flat protocol's scheme — so deliveries are deterministic and no
  // shared RNG stream is consumed.
  SplitMix64 sm(0xC6A4A7935BD1E995ULL ^
                (static_cast<std::uint64_t>(src) << 32) ^ payload->version);
  auto& filter = polluted->filter;
  const std::uint32_t bits = filter.params().bits;
  const std::uint32_t stuff = ctx_.faults->plan().config().pollution_bits;
  for (std::uint32_t i = 0; i < stuff && bits > 0; ++i) {
    const auto pos = static_cast<std::uint32_t>(sm.next() % bits);
    if (!filter.bit(pos)) filter.toggle(pos);
  }
  ++counters_.polluted_ads;
  return polluted;
}

void SuperpeerAsap::note_readmit(NodeId cacher, NodeId source, Seconds t) {
  ++counters_.readmissions;
  ASAP_OBS_HOOK(ctx_.obs, on_quarantine_exit(cacher));
  ASAP_OBS_HOOK(ctx_.obs, trace_quarantine(t, cacher, source, "exit"));
}

void SuperpeerAsap::note_implausible(NodeId cacher, NodeId source, Seconds t) {
  // A fill-gate demotion is a trust strike earned by the ad itself — no
  // confirm probe was needed. The entry stays cached at zero trust
  // (demote-and-verify); quarantine follows only if it wastes a probe.
  ++counters_.trust_strikes;
  ASAP_OBS_HOOK(ctx_.obs, on_trust_strike(cacher));
  ASAP_OBS_HOOK(ctx_.obs, trace_trust_strike(t, cacher, source, "implausible"));
}

void SuperpeerAsap::publish(NodeId source, AdKind kind, Seconds when,
                            double scale, const AdPayloadPtr& payload,
                            std::span<const std::uint32_t> patch,
                            std::uint32_t base) {
  Bytes msg_size = 0;
  sim::Traffic cat = sim::Traffic::kFullAd;
  switch (kind) {
    case AdKind::kFull:
      msg_size = full_ad_bytes(*payload, ctx_.sizes);
      cat = sim::Traffic::kFullAd;
      ++counters_.full_ads;
      break;
    case AdKind::kPatch:
      msg_size = patch_ad_bytes(patch.size(), payload->topics.size(),
                                ctx_.sizes);
      cat = sim::Traffic::kPatchAd;
      ++counters_.patch_ads;
      break;
    case AdKind::kRefresh:
      msg_size = refresh_ad_bytes(ctx_.sizes);
      cat = sim::Traffic::kRefreshAd;
      ++counters_.refresh_ads;
      break;
    case AdKind::kDelta:
      msg_size = delta_ad_bytes(patch.size(), payload->topics.size(),
                                ctx_.sizes);
      cat = sim::Traffic::kPatchAd;
      ++counters_.delta_ads;
      break;
  }

  // Leaves upload the ad to their proxy first (one hop).
  NodeId entry = source;
  Seconds start = when;
  if (!is_superpeer_[source]) {
    const NodeId proxy = proxy_[source] != kInvalidNode &&
                                 ctx_.online(proxy_[source])
                             ? proxy_[source]
                             : assign_proxy(source);
    proxy_[source] = proxy;
    if (proxy == kInvalidNode) return;  // no live superpeer reachable
    start = when + ctx_.latency(source, proxy);
    ASAP_AUDIT_HOOK(ctx_.auditor, on_send(cat, msg_size));
    ctx_.ledger.deposit(start, cat, msg_size);
    ++counters_.proxy_uploads;
    entry = proxy;
  }

  auto apply_at = [&](NodeId sp, Seconds t) {
    AdCache& cache = caches_[sp];
    switch (kind) {
      case AdKind::kFull: {
        const auto r = cache.put(payload, t, ctx_.rng);
        if (r.stored) ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(sp));
        if (r.evicted) ASAP_OBS_HOOK(ctx_.obs, on_ad_evicted(sp));
        if (r.readmitted) note_readmit(sp, source, t);
        if (r.implausible) note_implausible(sp, source, t);
        break;
      }
      case AdKind::kPatch: {
        const auto outcome = cache.apply_patch(source, base, payload, t);
        if (outcome == UpdateOutcome::kApplied) {
          ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(sp));
        } else if (outcome == UpdateOutcome::kInvalidated) {
          ASAP_OBS_HOOK(ctx_.obs, on_ad_invalidated(sp));
        }
        break;
      }
      case AdKind::kRefresh: {
        const auto outcome = cache.on_refresh(source, payload->version, t);
        if (outcome == UpdateOutcome::kInvalidated) {
          ASAP_OBS_HOOK(ctx_.obs, on_ad_invalidated(sp));
        }
        break;
      }
      case AdKind::kDelta: {
        const auto outcome = cache.apply_delta(source, base, patch, payload, t);
        if (outcome == UpdateOutcome::kApplied) {
          ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(sp));
        } else if (outcome == UpdateOutcome::kInvalidated) {
          ASAP_OBS_HOOK(ctx_.obs, on_ad_invalidated(sp));
        }
        break;
      }
    }
    ASAP_AUDIT_HOOK(ctx_.auditor,
                    on_cache_occupancy(cache.size(), params_.cache_capacity));
  };
  // The entry superpeer caches unconditionally (it proxies the source).
  apply_at(entry, start);

  // Adaptive mode: the mesh spread waits for the proxy's next ad round.
  if (adaptive()) {
    enqueue_pending(entry, source, kind, payload, patch, base);
    return;
  }

  // Dissemination runs over the superpeer mesh only. Superpeers cache all
  // ads (they serve queries from leaves with arbitrary interests).
  search::GraphScope scope(ctx_, sp_mesh_);
  auto visit = [&](NodeId sp, Seconds t, std::uint32_t) {
    apply_at(sp, t);
    return search::VisitAction::kContinue;
  };
  search::PropagationStats prop;
  switch (params_.scheme) {
    case search::Scheme::kFlooding:
      prop = search::flood(ctx_, entry, start, params_.flood_ttl, msg_size,
                           cat, visit);
      break;
    case search::Scheme::kRandomWalk: {
      const auto budget = delivery_budget(payload->topics.size(), scale);
      const auto walkers = std::max<std::uint64_t>(
          params_.walkers,
          (budget + params_.max_walk_hops - 1) / params_.max_walk_hops);
      prop = search::random_walk(ctx_, entry, start,
                                 static_cast<std::uint32_t>(walkers),
                                 std::max<std::uint64_t>(1, budget / walkers),
                                 msg_size, cat, visit);
      break;
    }
    case search::Scheme::kGsa:
      prop = search::gsa(ctx_, entry, start,
                         delivery_budget(payload->topics.size(), scale),
                         msg_size, cat, visit);
      break;
  }
  ASAP_OBS_HOOK(ctx_.obs, trace_ad(when, source, ad_kind_name(kind),
                                   prop.messages, prop.bytes));
}

Bytes SuperpeerAsap::pending_bytes(const PendingAd& p) const {
  switch (p.kind) {
    case AdKind::kFull:
      return full_ad_bytes(*p.payload, ctx_.sizes);
    case AdKind::kPatch:
      return patch_ad_bytes(p.toggles.size(), p.payload->topics.size(),
                            ctx_.sizes);
    case AdKind::kDelta:
      return delta_ad_bytes(p.toggles.size(), p.payload->topics.size(),
                            ctx_.sizes);
    case AdKind::kRefresh:
      return refresh_ad_bytes(ctx_.sizes);
  }
  return 0;
}

void SuperpeerAsap::enqueue_pending(NodeId sp, NodeId source, AdKind kind,
                                    const AdPayloadPtr& payload,
                                    std::span<const std::uint32_t> patch,
                                    std::uint32_t base) {
  PendingAd& slot = pending_[sp][source];
  switch (kind) {
    case AdKind::kFull:
      slot.kind = AdKind::kFull;
      slot.payload = payload;
      slot.base = 0;
      slot.toggles.clear();
      break;
    case AdKind::kPatch:
    case AdKind::kDelta:
      if (slot.payload == nullptr || slot.kind == AdKind::kRefresh) {
        // First change for this source since the last round: keep the
        // compact delta form as uploaded.
        slot.kind = kind;
        slot.payload = payload;
        slot.base = base;
        slot.toggles.assign(patch.begin(), patch.end());
      } else if (slot.kind == AdKind::kFull) {
        slot.payload = payload;  // pending full absorbs the newer payload
      } else {
        // Two queued changes cannot be chained (the second's base is the
        // state after the first applied, which cachers never saw);
        // promote to a full ad of the latest canonical payload.
        slot.kind = AdKind::kFull;
        slot.payload = payload;
        slot.base = 0;
        slot.toggles.clear();
      }
      break;
    case AdKind::kRefresh:
      if (slot.payload == nullptr) {
        slot.kind = AdKind::kRefresh;
        slot.payload = payload;
      } else if (slot.kind == AdKind::kRefresh) {
        slot.payload = payload;  // newer beacon version
      }
      // A queued change already carries the freshest state; keep it.
      break;
  }
  sp_scheds_[sp].upsert(source, pending_bytes(slot),
                        /*urgent=*/slot.kind != AdKind::kRefresh);
  schedule_round(sp);
}

void SuperpeerAsap::schedule_round(NodeId sp) {
  if (round_scheduled_[sp]) return;
  round_scheduled_[sp] = 1;
  const Seconds delay = params_.ad_round_period * ctx_.rng.uniform(0.5, 1.5);
  ctx_.engine.schedule_in(delay, sp, [this, sp] { run_ad_round(sp); });
}

void SuperpeerAsap::run_ad_round(NodeId sp) {
  round_scheduled_[sp] = 0;
  AdScheduler& sched = sp_scheds_[sp];
  if (sched.empty()) return;  // nothing to rotate; the timer lapses
  if (!ctx_.online(sp)) {
    schedule_round(sp);  // proxy offline; retry next period
    return;
  }
  const Seconds when = ctx_.engine.now();
  std::vector<AdScheduler::Emission> emissions;
  const auto plan = sched.next_round(emissions);
  ++counters_.ad_rounds;
  counters_.spilled_entries += plan.spilled;

  // Materialize the frame and its wire size.
  Bytes msg_size = ctx_.sizes.packed_frame_header;
  bool any_full = false;
  bool any_change = false;
  std::size_t max_topics = 1;
  std::vector<std::pair<NodeId, const PendingAd*>> entries;
  entries.reserve(emissions.size());
  for (const auto& e : emissions) {
    const auto it = pending_[sp].find(e.id);
    ASAP_DCHECK(it != pending_[sp].end());
    if (it == pending_[sp].end()) continue;
    const PendingAd& p = it->second;
    msg_size += ctx_.sizes.packed_entry_overhead + pending_bytes(p);
    any_full = any_full || p.kind == AdKind::kFull;
    any_change = any_change ||
                 p.kind == AdKind::kPatch || p.kind == AdKind::kDelta;
    max_topics = std::max(max_topics, p.payload->topics.size());
    entries.emplace_back(e.id, &p);
  }
  if (!entries.empty()) {
    ++counters_.packed_frames;
    counters_.packed_entries += entries.size();

    auto apply_frame = [&](NodeId v, Seconds t) {
      AdCache& cache = caches_[v];
      for (const auto& [src, p] : entries) {
        switch (p->kind) {
          case AdKind::kFull: {
            const auto r = cache.put(p->payload, t, ctx_.rng);
            if (r.stored) ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(v));
            if (r.evicted) ASAP_OBS_HOOK(ctx_.obs, on_ad_evicted(v));
            if (r.readmitted) note_readmit(v, src, t);
            if (r.implausible) note_implausible(v, src, t);
            break;
          }
          case AdKind::kPatch: {
            const auto outcome =
                cache.apply_patch(src, p->base, p->payload, t);
            if (outcome == UpdateOutcome::kApplied) {
              ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(v));
            } else if (outcome == UpdateOutcome::kInvalidated) {
              ASAP_OBS_HOOK(ctx_.obs, on_ad_invalidated(v));
            }
            break;
          }
          case AdKind::kDelta: {
            const auto outcome =
                cache.apply_delta(src, p->base, p->toggles, p->payload, t);
            if (outcome == UpdateOutcome::kApplied) {
              ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(v));
            } else if (outcome == UpdateOutcome::kInvalidated) {
              ASAP_OBS_HOOK(ctx_.obs, on_ad_invalidated(v));
            }
            break;
          }
          case AdKind::kRefresh: {
            const auto outcome =
                cache.on_refresh(src, p->payload->version, t);
            if (outcome == UpdateOutcome::kInvalidated) {
              ASAP_OBS_HOOK(ctx_.obs, on_ad_invalidated(v));
            }
            break;
          }
        }
      }
      ASAP_AUDIT_HOOK(ctx_.auditor, on_cache_occupancy(
                                        cache.size(), params_.cache_capacity));
    };

    const double scale = any_full     ? params_.join_budget_scale
                         : any_change ? params_.patch_budget_scale
                                      : params_.refresh_budget_scale;
    search::GraphScope scope(ctx_, sp_mesh_);
    auto visit = [&](NodeId v, Seconds t, std::uint32_t) {
      apply_frame(v, t);
      return search::VisitAction::kContinue;
    };
    search::PropagationStats prop;
    switch (params_.scheme) {
      case search::Scheme::kFlooding:
        prop = search::flood(ctx_, sp, when, params_.flood_ttl, msg_size,
                             sim::Traffic::kPackedAd, visit);
        break;
      case search::Scheme::kRandomWalk: {
        const auto budget = delivery_budget(max_topics, scale);
        const auto walkers = std::max<std::uint64_t>(
            params_.walkers,
            (budget + params_.max_walk_hops - 1) / params_.max_walk_hops);
        prop = search::random_walk(
            ctx_, sp, when, static_cast<std::uint32_t>(walkers),
            std::max<std::uint64_t>(1, budget / walkers), msg_size,
            sim::Traffic::kPackedAd, visit);
        break;
      }
      case search::Scheme::kGsa:
        prop = search::gsa(ctx_, sp, when, delivery_budget(max_topics, scale),
                           msg_size, sim::Traffic::kPackedAd, visit);
        break;
    }
    ASAP_OBS_HOOK(ctx_.obs,
                  trace_ad(when, sp, "packed", prop.messages, prop.bytes));
    ASAP_OBS_HOOK(ctx_.obs,
                  trace_ad_round(when, sp,
                                 static_cast<std::uint32_t>(entries.size()),
                                 plan.spilled, prop.bytes));

    // Emitted entries decay to refresh beacons: the scheduler's stride
    // decay then re-advertises stable sources every 2nd / 4th round.
    for (const auto& [src, p] : entries) {
      PendingAd& slot = pending_[sp][src];
      slot.kind = AdKind::kRefresh;
      slot.base = 0;
      slot.toggles.clear();
      sched.upsert(src, refresh_ad_bytes(ctx_.sizes), /*urgent=*/false);
    }
  }
  schedule_round(sp);
}

void SuperpeerAsap::warm_up(Seconds duration) {
  ASAP_REQUIRE(duration > 0.0, "warm-up duration must be positive");
  const auto initial = ctx_.model.params().initial_nodes;
  for (NodeId n = 0; n < initial; ++n) {
    auto& adv = advertisers_[n];
    for (DocId d : ctx_.live.docs(n)) adv.add_document(ctx_.model.doc(d));
    if (!adv.has_content()) continue;
    const Seconds at = ctx_.rng.uniform(0.0, duration * 0.5);
    ctx_.engine.schedule_at(at, n, [this, n] {
      if (!ctx_.online(n)) return;
      auto payload = maybe_pollute(n, advertisers_[n].publish_full());
      publish(n, AdKind::kFull, ctx_.engine.now(), 1.0, payload, {}, 0);
      schedule_refresh(n);
    });
  }
}

void SuperpeerAsap::schedule_refresh(NodeId n) {
  if (refresh_scheduled_[n]) return;
  refresh_scheduled_[n] = 1;
  const Seconds delay = params_.refresh_period * ctx_.rng.uniform(0.5, 1.5);
  ctx_.engine.schedule_in(delay, n, [this, n] { on_refresh_timer(n); });
}

void SuperpeerAsap::on_refresh_timer(NodeId n) {
  refresh_scheduled_[n] = 0;
  if (!ctx_.online(n)) return;
  auto& adv = advertisers_[n];
  if (adv.has_advertised() && adv.has_content()) {
    publish(n, AdKind::kRefresh, ctx_.engine.now(),
            params_.refresh_budget_scale, adv.payload(), {}, 0);
  }
  schedule_refresh(n);
}

void SuperpeerAsap::on_trace_event(const trace::TraceEvent& ev) {
  switch (ev.type) {
    case trace::TraceEventType::kQuery:
      run_query(ev);
      break;
    case trace::TraceEventType::kAddDoc:
    case trace::TraceEventType::kRemoveDoc:
      on_content_change(ev);
      break;
    case trace::TraceEventType::kJoin:
      on_join(ev);
      break;
    case trace::TraceEventType::kRejoin: {
      // Re-pick a proxy (the old one may be gone) and re-announce.
      const NodeId n = ev.node;
      proxy_[n] = assign_proxy(n);
      auto& adv = advertisers_[n];
      if (adv.has_content()) {
        auto payload = maybe_pollute(n, adv.publish_full());
        publish(n, AdKind::kFull, ev.time, params_.join_budget_scale,
                payload, {}, 0);
        schedule_refresh(n);
      }
      break;
    }
    case trace::TraceEventType::kLeave:
      break;
  }
}

void SuperpeerAsap::on_join(const trace::TraceEvent& ev) {
  const NodeId n = ev.node;
  // Joiners enter as leaves; grow the mesh's id space to keep it aligned
  // with the main overlay.
  while (sp_mesh_.num_nodes() < ctx_.ov.num_nodes()) {
    Rng throwaway(0);  // attach with zero edges; rng is never consumed
    sp_mesh_.attach_new(0, throwaway);
  }
  proxy_[n] = assign_proxy(n);
  auto& adv = advertisers_[n];
  for (DocId d : ctx_.live.docs(n)) adv.add_document(ctx_.model.doc(d));
  if (adv.has_content()) {
    auto payload = maybe_pollute(n, adv.publish_full());
    publish(n, AdKind::kFull, ev.time, params_.join_budget_scale, payload,
            {}, 0);
    schedule_refresh(n);
  }
}

void SuperpeerAsap::on_content_change(const trace::TraceEvent& ev) {
  const NodeId n = ev.node;
  auto& adv = advertisers_[n];
  const auto& doc = ctx_.model.doc(ev.doc);
  if (ev.type == trace::TraceEventType::kAddDoc) {
    adv.add_document(doc);
  } else {
    adv.remove_document(doc);
  }
  if (!ctx_.online(n)) return;
  if (!adv.has_advertised()) {
    if (adv.has_content()) {
      auto payload = maybe_pollute(n, adv.publish_full());
      publish(n, AdKind::kFull, ev.time, params_.join_budget_scale, payload,
              {}, 0);
      schedule_refresh(n);
    }
    return;
  }
  auto patch = adv.pending_patch();
  if (patch.empty()) return;
  const std::uint32_t base = adv.version();
  auto payload = adv.publish_full();
  // Polluters only ship full (stuffed) ads: a patch would store the
  // canonical payload at cachers and launder the pollution away.
  if (is_polluter(n)) {
    publish(n, AdKind::kFull, ev.time, params_.join_budget_scale,
            maybe_pollute(n, std::move(payload)), {}, 0);
    return;
  }
  publish(n, AdKind::kPatch, ev.time, params_.patch_budget_scale, payload,
          patch, base);
}

Seconds SuperpeerAsap::confirm_round(
    NodeId requester, NodeId sp, Seconds start,
    std::span<const KeywordId> terms,
    std::span<const AdPayloadPtr> candidates, metrics::SearchRecord& rec,
    Seconds& resolve) {
  Seconds best = kInfTime;
  std::uint32_t sent = 0;
  const bool trust = caches_[sp].trust_enabled();
  // A strike (or quarantine) charged to the *proxy's* cache: the requester
  // reports the outcome back to its proxy, which owns the entry.
  auto strike = [&](NodeId src, Seconds t, const char* kind) {
    if (!trust) return;
    ++counters_.trust_strikes;
    ASAP_OBS_HOOK(ctx_.obs, on_trust_strike(sp));
    ASAP_OBS_HOOK(ctx_.obs, trace_trust_strike(t, sp, src, kind));
    if (caches_[sp].record_strike(src, t)) {
      ++counters_.quarantines;
      ASAP_OBS_HOOK(ctx_.obs, on_quarantine_enter(sp));
      ASAP_OBS_HOOK(ctx_.obs, trace_quarantine(t, sp, src, "enter"));
    }
  };
  for (const auto& ad : candidates) {
    if (sent >= params_.max_confirms) break;
    const NodeId s = ad->source;
    if (s == requester) continue;
    ++sent;
    ++counters_.confirm_requests;
    const Seconds lat = ctx_.latency(requester, s);
    const Seconds t_req = start + lat;
    ASAP_AUDIT_HOOK(ctx_.auditor, on_confirm_request());
    ASAP_AUDIT_HOOK(ctx_.auditor, on_send(sim::Traffic::kConfirm,
                                          ctx_.sizes.confirm_request));
    ctx_.ledger.deposit(t_req, sim::Traffic::kConfirm,
                        ctx_.sizes.confirm_request);
    ASAP_OBS_HOOK(ctx_.obs, on_confirm_sent(requester));
    rec.cost_bytes += ctx_.sizes.confirm_request;
    ++rec.messages;
    // Confirm-droppers swallow the request: to the requester this is
    // indistinguishable from an offline source.
    const bool dropped = ctx_.online(s) && ctx_.faults != nullptr &&
                         ctx_.faults->is_confirm_dropper(s);
    if (dropped) ++counters_.dropped_confirms;
    if (!ctx_.online(s) || dropped) {
      ASAP_AUDIT_HOOK(ctx_.auditor, on_confirm_timeout());
      ASAP_OBS_HOOK(ctx_.obs, on_confirm_timed_out(requester));
      ASAP_OBS_HOOK(ctx_.obs, trace_confirm(t_req, requester, s, "timeout"));
      resolve = std::max(resolve, start + 2.0 * lat);
      strike(s, start + 2.0 * lat, "timeout");
      continue;  // the proxy's cache entry ages out via refresh gaps
    }
    const Seconds t_reply = t_req + lat;
    ASAP_AUDIT_HOOK(ctx_.auditor, on_confirm_reply());
    ASAP_AUDIT_HOOK(ctx_.auditor, on_send(sim::Traffic::kConfirm,
                                          ctx_.sizes.confirm_reply));
    ctx_.ledger.deposit(t_reply, sim::Traffic::kConfirm,
                        ctx_.sizes.confirm_reply);
    rec.cost_bytes += ctx_.sizes.confirm_reply;
    ++rec.messages;
    resolve = std::max(resolve, t_reply);
    bool matches = ctx_.live.node_matches(s, terms, ctx_.model);
    // Stale-advertisers advertise but never serve: every confirm comes
    // back empty-handed no matter what the ground truth says.
    if (matches && ctx_.faults != nullptr &&
        ctx_.faults->is_stale_advertiser(s)) {
      matches = false;
      ++counters_.forced_negatives;
    }
    if (matches) {
      best = std::min(best, t_reply);
      ++rec.results;
      if (trust) caches_[sp].record_reward(s);
      ASAP_OBS_HOOK(ctx_.obs, on_confirm_positive(requester));
      ASAP_OBS_HOOK(ctx_.obs,
                    trace_confirm(t_reply, requester, s, "positive"));
    } else {
      ASAP_OBS_HOOK(ctx_.obs,
                    trace_confirm(t_reply, requester, s, "negative"));
      strike(s, t_reply, "false-positive");
    }
  }
  return best;
}

Seconds SuperpeerAsap::ads_request_phase(
    NodeId sp, Seconds start, const bloom::HashedQuery& query,
    metrics::SearchRecord* rec, std::vector<AdPayloadPtr>& matches_out) {
  matches_out.clear();
  if (params_.ads_request_hops == 0) return start;
  ++counters_.ads_requests;
  Seconds done = start;

  search::GraphScope scope(ctx_, sp_mesh_);
  auto visit = [&](NodeId v, Seconds t, std::uint32_t) {
    caches_[v].collect_for_reply(query, {}, params_.ads_reply_max,
                                 params_.ads_reply_topical_max,
                                 reply_scratch_);
    Bytes reply_bytes = ctx_.sizes.ads_reply_header;
    for (const auto& ad : reply_scratch_) {
      reply_bytes += ctx_.sizes.ads_reply_entry_overhead +
                     full_ad_bytes(*ad, ctx_.sizes);
    }
    const Seconds t_back = t + ctx_.latency(v, sp);
    ASAP_AUDIT_HOOK(ctx_.auditor,
                    on_send(sim::Traffic::kAdsRequest, reply_bytes));
    ctx_.ledger.deposit(t_back, sim::Traffic::kAdsRequest, reply_bytes);
    if (rec != nullptr) {
      rec->cost_bytes += reply_bytes;
      ++rec->messages;
    }
    done = std::max(done, t_back);
    for (auto& ad : reply_scratch_) {
      const auto r = caches_[sp].put(ad, t_back, ctx_.rng);
      if (r.stored) ASAP_OBS_HOOK(ctx_.obs, on_ad_stored(sp));
      if (r.evicted) ASAP_OBS_HOOK(ctx_.obs, on_ad_evicted(sp));
      if (r.implausible) note_implausible(sp, ad->source, t_back);
      ASAP_AUDIT_HOOK(ctx_.auditor,
                      on_cache_occupancy(caches_[sp].size(),
                                         params_.cache_capacity));
      if (!query.empty() && query.matches(ad->filter)) {
        matches_out.push_back(ad);
      }
    }
    return search::VisitAction::kContinue;
  };
  const auto prop =
      search::flood(ctx_, sp, start, params_.ads_request_hops,
                    ctx_.sizes.ads_request, sim::Traffic::kAdsRequest, visit);
  if (rec != nullptr) {
    rec->cost_bytes += prop.bytes;
    rec->messages += prop.messages;
  }
  std::sort(matches_out.begin(), matches_out.end(),
            [](const AdPayloadPtr& a, const AdPayloadPtr& b) {
              return a->source < b->source;
            });
  matches_out.erase(
      std::unique(matches_out.begin(), matches_out.end(),
                  [](const AdPayloadPtr& a, const AdPayloadPtr& b) {
                    return a->source == b->source;
                  }),
      matches_out.end());
  return done;
}

void SuperpeerAsap::run_query(const trace::TraceEvent& ev) {
  const NodeId r = ev.node;
  const auto terms = ev.term_span();
  metrics::SearchRecord rec;

  // One-shot query hashing, shared by the proxy-side cache scan and the
  // widened superpeer-mesh lookup.
  const bloom::HashedQuery& query = ctx_.hash_query(terms);

  // Route to the proxy (superpeers serve themselves).
  NodeId sp = r;
  Seconds at_proxy = ev.time;
  if (!is_superpeer_[r]) {
    NodeId proxy = proxy_[r];
    if (proxy == kInvalidNode || !ctx_.online(proxy)) {
      proxy = assign_proxy(r);
      proxy_[r] = proxy;
    }
    if (proxy == kInvalidNode) {
      // No live superpeer: the search fails outright.
      ASAP_OBS_HOOK(ctx_.obs, trace_query(ev.time, r, false, false, 0.0,
                                          rec.cost_bytes, rec.messages, 0));
      if (!synthetic_query()) stats_.add(rec);
      return;
    }
    sp = proxy;
    at_proxy = ev.time + ctx_.latency(r, sp);
    ASAP_AUDIT_HOOK(ctx_.auditor,
                    on_send(sim::Traffic::kConfirm, ctx_.sizes.query));
    ctx_.ledger.deposit(at_proxy, sim::Traffic::kConfirm, ctx_.sizes.query);
    rec.cost_bytes += ctx_.sizes.query;
    ++rec.messages;
    ++counters_.proxy_queries;
  }

  // Overload protection at the proxy — the hierarchy's congestion point.
  // Storm traffic converging on one superpeer is shed (or clamped) there.
  bool clamp_widening = false;
  if (!pending_queries_.empty()) {
    auto& q = pending_queries_[sp];
    std::size_t depth = 0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (q[i] > at_proxy) q[depth++] = q[i];
    }
    q.resize(depth);
    if (params_.pending_query_cap > 0 &&
        depth >= params_.pending_query_cap) {
      ++counters_.queries_shed;
      ASAP_OBS_HOOK(ctx_.obs, on_query_shed(sp));
      ASAP_OBS_HOOK(ctx_.obs,
                    trace_shed(at_proxy, sp,
                               static_cast<std::uint32_t>(depth)));
      ASAP_OBS_HOOK(ctx_.obs, trace_query(ev.time, r, false, false, 0.0,
                                          rec.cost_bytes, rec.messages, 0));
      if (!synthetic_query()) stats_.add(rec);
      return;
    }
    // Peak counts admitted queries only, so with a cap it never exceeds
    // the cap — shedding is exactly the mechanism that bounds it.
    counters_.peak_pending_depth =
        std::max<std::uint64_t>(counters_.peak_pending_depth, depth + 1);
    if (params_.ttl_clamp_depth > 0 && depth >= params_.ttl_clamp_depth) {
      clamp_widening = true;
      ++counters_.ttl_clamped;
    }
  }

  // Proxy-side lookup; the candidate list travels back to the requester,
  // which confirms with the sources directly.
  caches_[sp].collect_matches(query, scratch_ads_);
  if (caches_[sp].trust_enabled() && scratch_ads_.size() > 1) {
    // Trust-weighted ranking: confirmed-good sources first; stable so the
    // cache's deterministic scan order still breaks ties.
    std::stable_sort(scratch_ads_.begin(), scratch_ads_.end(),
                     [&](const AdPayloadPtr& a, const AdPayloadPtr& b) {
                       return caches_[sp].trust_of(a->source) >
                              caches_[sp].trust_of(b->source);
                     });
  }
  Seconds confirm_start = at_proxy;
  if (sp != r) {
    confirm_start = at_proxy + ctx_.latency(sp, r);
    ASAP_AUDIT_HOOK(ctx_.auditor,
                    on_send(sim::Traffic::kConfirm, ctx_.sizes.response));
    ctx_.ledger.deposit(confirm_start, sim::Traffic::kConfirm,
                        ctx_.sizes.response);
    rec.cost_bytes += ctx_.sizes.response;
    ++rec.messages;
  }
  Seconds resolve = confirm_start;
  Seconds best =
      confirm_round(r, sp, confirm_start, terms, scratch_ads_, rec, resolve);
  const bool local = best < kInfTime;
  Seconds done_at = resolve;

  if (!local && !clamp_widening) {
    // Proxy widens the lookup among its superpeer neighbors.
    std::vector<AdPayloadPtr> fresh;
    const Seconds done = ads_request_phase(sp, resolve, query, &rec, fresh);
    if (!fresh.empty()) {
      Seconds fetch_start = done;
      if (sp != r) {
        fetch_start = done + ctx_.latency(sp, r);
        ASAP_AUDIT_HOOK(ctx_.auditor,
                        on_send(sim::Traffic::kConfirm, ctx_.sizes.response));
        ctx_.ledger.deposit(fetch_start, sim::Traffic::kConfirm,
                            ctx_.sizes.response);
        rec.cost_bytes += ctx_.sizes.response;
        ++rec.messages;
      }
      Seconds resolve2 = fetch_start;
      best = std::min(best, confirm_round(r, sp, fetch_start, terms, fresh,
                                          rec, resolve2));
      done_at = std::max(done_at, resolve2);
    } else {
      done_at = std::max(done_at, done);
    }
  }
  if (!pending_queries_.empty()) pending_queries_[sp].push_back(done_at);

  rec.success = best < kInfTime;
  rec.local_hit = local;
  rec.response_time = rec.success ? best - ev.time : 0.0;
  ASAP_OBS_HOOK(ctx_.obs,
                trace_query(ev.time, r, rec.success, rec.local_hit,
                            rec.response_time, rec.cost_bytes, rec.messages,
                            rec.results));
  if (!synthetic_query()) stats_.add(rec);
}

std::uint64_t SuperpeerAsap::total_cached_ads() const {
  std::uint64_t total = 0;
  for (NodeId n = 0; n < caches_.size(); ++n) {
    if (is_superpeer_[n]) total += caches_[n].size();
  }
  return total;
}

}  // namespace asap::ads
