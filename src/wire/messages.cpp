#include "wire/messages.hpp"

#include <algorithm>

namespace asap::wire {

namespace {

constexpr std::uint8_t kMagic = 0xA5;
constexpr std::uint8_t kFrameMagic = 0xA6;

/// Sanity cap on ads per packed frame; real frames are byte-budgeted far
/// below this, so anything larger is a corrupt or hostile buffer.
constexpr std::uint64_t kMaxFrameItems = 4096;

// Filter body encodings inside a full ad.
constexpr std::uint8_t kBodyBitmap = 0;
constexpr std::uint8_t kBodySparse = 1;

void encode_header(Writer& w, ads::AdKind kind, const ads::AdPayload& ad) {
  w.u8(kMagic);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(ad.source);
  w.varint(ad.version);
  w.u8(static_cast<std::uint8_t>(ad.topics.size()));
  for (const TopicId t : ad.topics) w.u8(t);
}

AdHeader decode_header(Reader& r) {
  if (r.u8() != kMagic) throw DecodeError("wire: bad magic");
  AdHeader h;
  const auto kind = r.u8();
  if (kind > static_cast<std::uint8_t>(ads::AdKind::kDelta)) {
    throw DecodeError("wire: unknown ad kind");
  }
  h.kind = static_cast<ads::AdKind>(kind);
  h.source = r.u32();
  h.version = static_cast<std::uint32_t>(r.varint());
  const auto topics = r.u8();
  h.topics.reserve(topics);
  for (std::uint8_t i = 0; i < topics; ++i) h.topics.push_back(r.u8());
  return h;
}

}  // namespace

void encode_full_ad(const ads::AdPayload& ad, Writer& w) {
  w.clear();
  encode_header(w, ads::AdKind::kFull, ad);

  const auto positions = ad.filter.set_positions();
  // Decide between raw bitmap and sparse form by encoding the sparse body
  // and comparing (varint deltas usually beat the 2-bytes-per-position
  // estimate the paper uses, and always beat the bitmap for light
  // sharers).
  Writer sparse;
  encode_positions(sparse, positions);
  const std::size_t bitmap_bytes = (ad.filter.params().bits + 7) / 8;
  if (sparse.size() < bitmap_bytes) {
    w.u8(kBodySparse);
    w.varint(positions.size());
    w.bytes(sparse.buffer());
  } else {
    w.u8(kBodyBitmap);
    std::vector<std::uint8_t> bitmap(bitmap_bytes, 0);
    for (const auto p : positions) bitmap[p >> 3] |= 1u << (p & 7);
    w.bytes(bitmap);
  }
}

std::vector<std::uint8_t> encode_full_ad(const ads::AdPayload& ad) {
  Writer w;
  encode_full_ad(ad, w);
  return w.to_vector();
}

namespace {

void encode_toggle_body(Writer& w, ads::AdKind kind, const ads::AdPayload& ad,
                        std::uint32_t base_version,
                        std::span<const std::uint32_t> toggles) {
  encode_header(w, kind, ad);
  w.varint(base_version);
  std::vector<std::uint32_t> sorted(toggles.begin(), toggles.end());
  std::sort(sorted.begin(), sorted.end());
  w.varint(sorted.size());
  encode_positions(w, sorted);
}

}  // namespace

void encode_patch_ad(const ads::AdPayload& ad, std::uint32_t base_version,
                     std::span<const std::uint32_t> toggles, Writer& w) {
  w.clear();
  encode_toggle_body(w, ads::AdKind::kPatch, ad, base_version, toggles);
}

std::vector<std::uint8_t> encode_patch_ad(
    const ads::AdPayload& ad, std::uint32_t base_version,
    std::span<const std::uint32_t> toggles) {
  Writer w;
  encode_patch_ad(ad, base_version, toggles, w);
  return w.to_vector();
}

void encode_refresh_ad(const ads::AdPayload& ad, Writer& w) {
  w.clear();
  encode_header(w, ads::AdKind::kRefresh, ad);
}

std::vector<std::uint8_t> encode_refresh_ad(const ads::AdPayload& ad) {
  Writer w;
  encode_refresh_ad(ad, w);
  return w.to_vector();
}

void encode_delta_ad(const ads::AdPayload& ad, std::uint32_t base_full_version,
                     std::span<const std::uint32_t> toggles, Writer& w) {
  w.clear();
  encode_toggle_body(w, ads::AdKind::kDelta, ad, base_full_version, toggles);
}

std::vector<std::uint8_t> encode_delta_ad(
    const ads::AdPayload& ad, std::uint32_t base_full_version,
    std::span<const std::uint32_t> toggles) {
  Writer w;
  encode_delta_ad(ad, base_full_version, toggles, w);
  return w.to_vector();
}

DecodedAd decode_ad(std::span<const std::uint8_t> data,
                    const bloom::BloomParams& params) {
  Reader r(data);
  DecodedAd out;
  out.header = decode_header(r);
  switch (out.header.kind) {
    case ads::AdKind::kFull: {
      bloom::BloomFilter filter(params);
      const auto body = r.u8();
      if (body == kBodySparse) {
        const auto count = r.varint();
        if (count > params.bits) {
          throw DecodeError("wire: more positions than filter bits");
        }
        const auto positions =
            decode_positions(r, static_cast<std::size_t>(count));
        for (const auto p : positions) {
          if (p >= params.bits) throw DecodeError("wire: position range");
          filter.toggle(p);
        }
      } else if (body == kBodyBitmap) {
        const std::size_t bitmap_bytes = (params.bits + 7) / 8;
        const auto bitmap = r.bytes(bitmap_bytes);
        for (std::uint32_t p = 0; p < params.bits; ++p) {
          if (bitmap[p >> 3] & (1u << (p & 7))) filter.toggle(p);
        }
      } else {
        throw DecodeError("wire: unknown filter body encoding");
      }
      out.filter = std::move(filter);
      break;
    }
    case ads::AdKind::kPatch:
    case ads::AdKind::kDelta: {
      out.base_version = static_cast<std::uint32_t>(r.varint());
      const auto count = r.varint();
      if (count > params.bits) {
        throw DecodeError("wire: more toggles than filter bits");
      }
      out.toggles = decode_positions(r, static_cast<std::size_t>(count));
      for (const auto p : out.toggles) {
        if (p >= params.bits) throw DecodeError("wire: toggle range");
      }
      break;
    }
    case ads::AdKind::kRefresh:
      break;
  }
  if (!r.done()) throw DecodeError("wire: trailing bytes");
  return out;
}

void encode_packed_frame(std::span<const PackedItem> items, Writer& w) {
  w.clear();
  w.u8(kFrameMagic);
  w.varint(items.size());
  Writer item_w;
  for (const PackedItem& item : items) {
    switch (item.kind) {
      case ads::AdKind::kFull:
        encode_full_ad(*item.ad, item_w);
        break;
      case ads::AdKind::kPatch:
        encode_patch_ad(*item.ad, item.base_version, item.toggles, item_w);
        break;
      case ads::AdKind::kRefresh:
        encode_refresh_ad(*item.ad, item_w);
        break;
      case ads::AdKind::kDelta:
        encode_delta_ad(*item.ad, item.base_version, item.toggles, item_w);
        break;
    }
    w.varint(item_w.size());
    w.bytes(item_w.buffer());
  }
}

std::vector<std::uint8_t> encode_packed_frame(
    std::span<const PackedItem> items) {
  Writer w;
  encode_packed_frame(items, w);
  return w.to_vector();
}

std::vector<DecodedAd> decode_packed_frame(std::span<const std::uint8_t> data,
                                           const bloom::BloomParams& params) {
  Reader r(data);
  if (r.u8() != kFrameMagic) throw DecodeError("wire: bad frame magic");
  const auto count = r.varint();
  if (count > kMaxFrameItems) {
    throw DecodeError("wire: unreasonable frame item count");
  }
  std::vector<DecodedAd> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto len = r.varint();
    if (len > r.remaining()) throw DecodeError("wire: frame item truncated");
    const auto slice = r.bytes(static_cast<std::size_t>(len));
    // decode_ad rejects per-item trailing bytes, so a corrupted length
    // that still lands inside the buffer cannot silently misparse.
    out.push_back(decode_ad(slice, params));
  }
  if (!r.done()) throw DecodeError("wire: trailing bytes");
  return out;
}

void encode_query(const QueryMessage& q, Writer& w) {
  w.clear();
  w.u8(kMagic);
  w.u32(q.requester);
  w.varint(q.terms.size());
  for (const KeywordId t : q.terms) w.varint(t);
}

std::vector<std::uint8_t> encode_query(const QueryMessage& q) {
  Writer w;
  encode_query(q, w);
  return w.to_vector();
}

QueryMessage decode_query(std::span<const std::uint8_t> data) {
  Reader r(data);
  if (r.u8() != kMagic) throw DecodeError("wire: bad magic");
  QueryMessage q;
  q.requester = r.u32();
  const auto count = r.varint();
  if (count > 64) throw DecodeError("wire: unreasonable term count");
  q.terms.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    q.terms.push_back(static_cast<KeywordId>(r.varint()));
  }
  if (!r.done()) throw DecodeError("wire: trailing bytes");
  return q;
}

}  // namespace asap::wire
