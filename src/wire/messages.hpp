// Concrete wire formats for ASAP protocol messages.
//
// The simulation accounts sizes analytically (sim::SizeModel); this module
// provides the real encodings a deployment would ship, and tests assert
// that the analytic sizes are honest upper bounds of the encoded sizes.
//
// Full ad body: the content filter ships either as the raw bitmap or as a
// delta-varint sparse position list, whichever is smaller (§III-B's
// compressed representation). Patch ads carry the toggled positions; a
// refresh ad is just the header. Delta ads reuse the patch body but the
// base version names the last *full* ad, not the previous version.
//
// Packed ad frame: the adaptive scheduler ships one budget-packed frame
// per ad round instead of one message per ad. A frame is its own magic
// (0xA6) + varint ad count + length-prefixed single-ad encodings, so every
// item round-trips through the unchanged single-ad codec.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "asap/ad.hpp"
#include "bloom/bloom.hpp"
#include "common/codec.hpp"

namespace asap::wire {

struct AdHeader {
  ads::AdKind kind = ads::AdKind::kFull;
  NodeId source = kInvalidNode;
  std::uint32_t version = 0;
  std::vector<TopicId> topics;
};

struct DecodedAd {
  AdHeader header;
  /// Present for full ads.
  std::optional<bloom::BloomFilter> filter;
  /// Present for patch/delta ads: base version + toggled positions. For a
  /// patch the base is the previous version; for a delta it is the last
  /// full ad's version.
  std::uint32_t base_version = 0;
  std::vector<std::uint32_t> toggles;
};

/// Serializes a full ad (header + filter, bitmap or sparse form).
std::vector<std::uint8_t> encode_full_ad(const ads::AdPayload& ad);

/// Serializes a patch ad. `toggles` need not be sorted (they are sorted
/// internally; BloomFilter::diff already emits sorted output).
std::vector<std::uint8_t> encode_patch_ad(
    const ads::AdPayload& ad, std::uint32_t base_version,
    std::span<const std::uint32_t> toggles);

/// Serializes a refresh ad (header only).
std::vector<std::uint8_t> encode_refresh_ad(const ads::AdPayload& ad);

/// Serializes a delta ad (patch body, base = last full ad's version).
std::vector<std::uint8_t> encode_delta_ad(
    const ads::AdPayload& ad, std::uint32_t base_full_version,
    std::span<const std::uint32_t> toggles);

/// Encode-into variants: clear() `w` and write the message into it. A
/// caller encoding a stream of ads keeps one Writer — optionally backed by
/// a pooled memory resource (sim::SlabResource) — and pays no per-message
/// allocation once its capacity has grown; the by-value functions above
/// are wrappers over these.
void encode_full_ad(const ads::AdPayload& ad, Writer& w);
void encode_patch_ad(const ads::AdPayload& ad, std::uint32_t base_version,
                     std::span<const std::uint32_t> toggles, Writer& w);
void encode_refresh_ad(const ads::AdPayload& ad, Writer& w);
void encode_delta_ad(const ads::AdPayload& ad, std::uint32_t base_full_version,
                     std::span<const std::uint32_t> toggles, Writer& w);

/// Parses any ad message. Throws DecodeError on malformed input.
DecodedAd decode_ad(std::span<const std::uint8_t> data,
                    const bloom::BloomParams& params = bloom::BloomParams{});

/// One item of a packed ad frame. `base_version`/`toggles` are consulted
/// only for patch and delta items.
struct PackedItem {
  ads::AdKind kind = ads::AdKind::kFull;
  const ads::AdPayload* ad = nullptr;
  std::uint32_t base_version = 0;
  std::span<const std::uint32_t> toggles;
};

/// Serializes a byte-budget-packed ad frame (any mix of kinds).
std::vector<std::uint8_t> encode_packed_frame(std::span<const PackedItem> items);
void encode_packed_frame(std::span<const PackedItem> items, Writer& w);

/// Parses a packed frame back into its per-ad decodings, in frame order.
/// Throws DecodeError on malformed input (bad magic, unreasonable counts,
/// truncated or trailing bytes — at frame and item level alike).
std::vector<DecodedAd> decode_packed_frame(
    std::span<const std::uint8_t> data,
    const bloom::BloomParams& params = bloom::BloomParams{});

/// Query message: requester + terms.
struct QueryMessage {
  NodeId requester = kInvalidNode;
  std::vector<KeywordId> terms;
};
std::vector<std::uint8_t> encode_query(const QueryMessage& q);
void encode_query(const QueryMessage& q, Writer& w);
QueryMessage decode_query(std::span<const std::uint8_t> data);

}  // namespace asap::wire
