// Concrete wire formats for ASAP protocol messages.
//
// The simulation accounts sizes analytically (sim::SizeModel); this module
// provides the real encodings a deployment would ship, and tests assert
// that the analytic sizes are honest upper bounds of the encoded sizes.
//
// Full ad body: the content filter ships either as the raw bitmap or as a
// delta-varint sparse position list, whichever is smaller (§III-B's
// compressed representation). Patch ads carry the toggled positions; a
// refresh ad is just the header.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "asap/ad.hpp"
#include "bloom/bloom.hpp"
#include "common/codec.hpp"

namespace asap::wire {

struct AdHeader {
  ads::AdKind kind = ads::AdKind::kFull;
  NodeId source = kInvalidNode;
  std::uint32_t version = 0;
  std::vector<TopicId> topics;
};

struct DecodedAd {
  AdHeader header;
  /// Present for full ads.
  std::optional<bloom::BloomFilter> filter;
  /// Present for patch ads: base version + toggled positions.
  std::uint32_t base_version = 0;
  std::vector<std::uint32_t> toggles;
};

/// Serializes a full ad (header + filter, bitmap or sparse form).
std::vector<std::uint8_t> encode_full_ad(const ads::AdPayload& ad);

/// Serializes a patch ad. `toggles` need not be sorted (they are sorted
/// internally; BloomFilter::diff already emits sorted output).
std::vector<std::uint8_t> encode_patch_ad(
    const ads::AdPayload& ad, std::uint32_t base_version,
    std::span<const std::uint32_t> toggles);

/// Serializes a refresh ad (header only).
std::vector<std::uint8_t> encode_refresh_ad(const ads::AdPayload& ad);

/// Encode-into variants: clear() `w` and write the message into it. A
/// caller encoding a stream of ads keeps one Writer — optionally backed by
/// a pooled memory resource (sim::SlabResource) — and pays no per-message
/// allocation once its capacity has grown; the by-value functions above
/// are wrappers over these.
void encode_full_ad(const ads::AdPayload& ad, Writer& w);
void encode_patch_ad(const ads::AdPayload& ad, std::uint32_t base_version,
                     std::span<const std::uint32_t> toggles, Writer& w);
void encode_refresh_ad(const ads::AdPayload& ad, Writer& w);

/// Parses any ad message. Throws DecodeError on malformed input.
DecodedAd decode_ad(std::span<const std::uint8_t> data,
                    const bloom::BloomParams& params = bloom::BloomParams{});

/// Query message: requester + terms.
struct QueryMessage {
  NodeId requester = kInvalidNode;
  std::vector<KeywordId> terms;
};
std::vector<std::uint8_t> encode_query(const QueryMessage& q);
void encode_query(const QueryMessage& q, Writer& w);
QueryMessage decode_query(std::span<const std::uint8_t> data);

}  // namespace asap::wire
