#include "overlay/overlay.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/error.hpp"
#include "common/zipf.hpp"

namespace asap::overlay {

Overlay::Overlay(std::uint32_t n) : adj_(n), attached_(n, true) {
  ASAP_REQUIRE(n >= 2, "overlay needs at least two nodes");
}

bool Overlay::add_edge(NodeId a, NodeId b) {
  ASAP_DCHECK(a < adj_.size() && b < adj_.size());
  if (a == b) return false;
  auto& na = adj_[a];
  if (std::find(na.begin(), na.end(), b) != na.end()) return false;
  na.push_back(b);
  adj_[b].push_back(a);
  ++num_edges_;
  return true;
}

double Overlay::avg_degree() const {
  std::uint64_t attached_count = 0;
  for (bool a : attached_) attached_count += a ? 1 : 0;
  if (attached_count == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(attached_count);
}

void Overlay::detach(NodeId n) {
  ASAP_REQUIRE(n < adj_.size(), "detach: unknown node");
  if (!attached_[n]) return;
  for (NodeId nb : adj_[n]) {
    auto& lst = adj_[nb];
    lst.erase(std::remove(lst.begin(), lst.end(), n), lst.end());
    --num_edges_;
  }
  adj_[n].clear();
  attached_[n] = false;
}

NodeId Overlay::attach_new(std::uint32_t target_degree, Rng& rng) {
  const auto id = static_cast<NodeId>(adj_.size());
  adj_.emplace_back();
  attached_.push_back(true);

  std::vector<NodeId> candidates = attached_nodes();
  // The new node itself is already attached; exclude it.
  candidates.pop_back();
  rng.shuffle(candidates);
  const std::size_t want = std::min<std::size_t>(target_degree,
                                                 candidates.size());
  for (std::size_t i = 0; i < want; ++i) add_edge(id, candidates[i]);
  return id;
}

void Overlay::reattach(NodeId n, std::uint32_t target_degree, Rng& rng) {
  ASAP_REQUIRE(n < adj_.size(), "reattach: unknown node");
  if (attached_[n]) return;
  attached_[n] = true;
  std::vector<NodeId> candidates = attached_nodes();
  candidates.erase(std::remove(candidates.begin(), candidates.end(), n),
                   candidates.end());
  rng.shuffle(candidates);
  const std::size_t want =
      std::min<std::size_t>(target_degree, candidates.size());
  for (std::size_t i = 0; i < want; ++i) add_edge(n, candidates[i]);
}

std::vector<NodeId> Overlay::attached_nodes() const {
  std::vector<NodeId> out;
  out.reserve(adj_.size());
  for (NodeId n = 0; n < adj_.size(); ++n) {
    if (attached_[n]) out.push_back(n);
  }
  return out;
}

bool Overlay::connected() const {
  const auto live = attached_nodes();
  if (live.empty()) return true;
  std::vector<bool> seen(adj_.size(), false);
  std::deque<NodeId> frontier{live.front()};
  seen[live.front()] = true;
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    ++visited;
    for (NodeId nb : adj_[cur]) {
      if (!seen[nb]) {
        seen[nb] = true;
        frontier.push_back(nb);
      }
    }
  }
  return visited == live.size();
}

std::vector<std::uint32_t> Overlay::degree_histogram() const {
  std::vector<std::uint32_t> hist;
  for (NodeId n = 0; n < adj_.size(); ++n) {
    if (!attached_[n]) continue;
    const auto d = degree(n);
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

void Overlay::ensure_connected(Rng& rng) {
  // Union-find over attached nodes.
  std::vector<NodeId> parent(adj_.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (NodeId n = 0; n < adj_.size(); ++n) {
    for (NodeId nb : adj_[n]) {
      const NodeId ra = find(n), rb = find(nb);
      if (ra != rb) parent[ra] = rb;
    }
  }
  // Collect one representative per component, then chain them with edges
  // between random members (we use the representative; a single bridge per
  // component pair is enough and barely perturbs the degree distribution).
  std::vector<NodeId> reps;
  for (NodeId n = 0; n < adj_.size(); ++n) {
    if (attached_[n] && find(n) == n) reps.push_back(n);
  }
  rng.shuffle(reps);
  for (std::size_t i = 1; i < reps.size(); ++i) {
    add_edge(reps[i - 1], reps[i]);
    parent[find(reps[i - 1])] = find(reps[i]);
  }
}

Overlay Overlay::random(std::uint32_t n, double avg_degree, Rng& rng) {
  ASAP_REQUIRE(avg_degree >= 2.0, "random overlay needs mean degree >= 2");
  ASAP_REQUIRE(avg_degree < n, "mean degree must be below node count");
  Overlay g(n);
  // Spanning tree first (connectivity), then random extra edges up to the
  // target edge count m = n * avg_degree / 2.
  for (NodeId i = 1; i < n; ++i) {
    g.add_edge(i, static_cast<NodeId>(rng.below(i)));
  }
  const auto target_edges =
      static_cast<std::uint64_t>(avg_degree * n / 2.0);
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = target_edges * 50;
  while (g.num_edges_ < target_edges && attempts++ < max_attempts) {
    const auto a = static_cast<NodeId>(rng.below(n));
    const auto b = static_cast<NodeId>(rng.below(n));
    g.add_edge(a, b);
  }
  return g;
}

namespace {

/// Configuration-model pairing of a degree sequence, discarding self-loops
/// and duplicate edges (an "erased configuration model").
void pair_degree_sequence(Overlay& g, std::vector<std::uint32_t>& deg,
                          Rng& rng) {
  std::vector<NodeId> stubs;
  stubs.reserve(std::accumulate(deg.begin(), deg.end(), 0ULL));
  for (NodeId n = 0; n < deg.size(); ++n) {
    for (std::uint32_t k = 0; k < deg[n]; ++k) stubs.push_back(n);
  }
  rng.shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    g.add_edge(stubs[i], stubs[i + 1]);
  }
}

}  // namespace

Overlay Overlay::powerlaw(std::uint32_t n, double avg_degree, double alpha,
                          Rng& rng) {
  ASAP_REQUIRE(avg_degree >= 1.5, "power-law overlay mean degree too small");
  Overlay g(n);
  const auto dmax =
      std::max<std::uint32_t>(16, static_cast<std::uint32_t>(avg_degree * 8));
  auto deg = powerlaw_degree_sequence(n, alpha, 1, dmax, avg_degree, rng);
  pair_degree_sequence(g, deg, rng);
  g.ensure_connected(rng);
  return g;
}

Overlay Overlay::interest_clustered(std::uint32_t n, double avg_degree,
                                    std::span<const std::uint8_t> group_of,
                                    double cluster_fraction, Rng& rng) {
  ASAP_REQUIRE(group_of.size() >= n, "group assignment too short");
  ASAP_REQUIRE(cluster_fraction >= 0.0 && cluster_fraction <= 1.0,
               "cluster fraction out of [0,1]");
  ASAP_REQUIRE(avg_degree >= 2.0 && avg_degree < n,
               "interest-clustered overlay mean degree out of range");
  Overlay g(n);
  // Bucket nodes by group for intra-group edge sampling.
  std::uint8_t max_group = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    max_group = std::max(max_group, group_of[i]);
  }
  std::vector<std::vector<NodeId>> buckets(max_group + 1);
  for (NodeId i = 0; i < n; ++i) buckets[group_of[i]].push_back(i);

  // Connectivity first: a random spanning tree over all nodes.
  for (NodeId i = 1; i < n; ++i) {
    g.add_edge(i, static_cast<NodeId>(rng.below(i)));
  }
  const auto target_edges = static_cast<std::uint64_t>(avg_degree * n / 2.0);
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = target_edges * 60;
  while (g.num_edges_ < target_edges && attempts++ < max_attempts) {
    const auto a = static_cast<NodeId>(rng.below(n));
    NodeId b;
    if (rng.chance(cluster_fraction)) {
      const auto& mates = buckets[group_of[a]];
      if (mates.size() < 2) continue;
      b = mates[rng.below(mates.size())];
    } else {
      b = static_cast<NodeId>(rng.below(n));
    }
    g.add_edge(a, b);
  }
  return g;
}

Overlay Overlay::crawled_like(std::uint32_t n, double avg_degree, Rng& rng) {
  ASAP_REQUIRE(avg_degree >= 1.5, "crawled overlay mean degree too small");
  ASAP_REQUIRE(n >= 20, "crawled overlay needs at least 20 nodes");
  Overlay g(n);
  // Limewire's crawled topology is two-tier: a well-connected ultrapeer
  // mesh (~15% of peers) with leaves hanging off it — which yields a low
  // diameter despite the sparse mean degree (3.35 in the paper's crawl).
  // Solve for the tier degrees: with ultrapeer fraction f, leaf attach
  // count a and ultrapeer mesh degree m, mean degree = 2*(1-f)*a + f*m.
  const auto ultras = std::max<std::uint32_t>(8, n * 3 / 20);  // ~15%
  const double f = static_cast<double>(ultras) / n;
  const double leaf_attach = 1.4;  // leaves connect to 1-2 ultrapeers
  const double mesh_degree =
      std::max(3.0, (avg_degree - 2.0 * (1.0 - f) * leaf_attach) / f);

  // Ultrapeer mesh: connected random graph among [0, ultras).
  for (NodeId i = 1; i < ultras; ++i) {
    g.add_edge(i, static_cast<NodeId>(rng.below(i)));
  }
  const auto mesh_edges =
      static_cast<std::uint64_t>(mesh_degree * ultras / 2.0);
  std::uint64_t guard = 0;
  while (g.num_edges_ < mesh_edges && guard++ < mesh_edges * 50) {
    g.add_edge(static_cast<NodeId>(rng.below(ultras)),
               static_cast<NodeId>(rng.below(ultras)));
  }

  // Leaves: each attaches to 1-2 random ultrapeers.
  for (NodeId leaf = ultras; leaf < n; ++leaf) {
    const std::uint32_t links = rng.chance(leaf_attach - 1.0) ? 2 : 1;
    for (std::uint32_t k = 0; k < links; ++k) {
      g.add_edge(leaf, static_cast<NodeId>(rng.below(ultras)));
    }
  }
  g.ensure_connected(rng);
  return g;
}

}  // namespace asap::overlay
