#include "overlay/overlay.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <utility>

#include "common/error.hpp"
#include "common/flat_map.hpp"
#include "common/zipf.hpp"

namespace asap::overlay {

namespace {

/// Fresh slots a block is built with beyond its current degree, so the
/// first few churn edges append in place instead of relocating.
constexpr std::uint32_t kBlockHeadroom = 2;
/// Compact once dead slots pass this floor AND exceed half the slab.
constexpr std::uint64_t kCompactMinDeadSlots = 4096;

/// Accumulates a deduplicated undirected edge list during generator draws.
///
/// The generators' retry loops terminate on the count of *accepted* edges,
/// so duplicate/self-loop rejection must happen while drawing — exactly
/// like the historical add_edge — not in a post-pass. Membership is an
/// open-addressing set over packed (min,max) pairs: O(edges) memory, no
/// per-node structures.
class EdgeCollector {
 public:
  explicit EdgeCollector(std::uint64_t expected) { edges_.reserve(expected); }

  /// Returns true if (a, b) is a new, non-self-loop edge.
  bool add(NodeId a, NodeId b) {
    if (a == b) return false;
    const auto lo = static_cast<std::uint64_t>(std::min(a, b));
    const auto hi = static_cast<std::uint64_t>(std::max(a, b));
    if (!seen_.insert((hi << 32) | lo)) return false;
    edges_.emplace_back(a, b);
    return true;
  }

  std::uint64_t count() const { return edges_.size(); }
  std::span<const std::pair<NodeId, NodeId>> edges() const { return edges_; }

 private:
  FlatSet<std::uint64_t> seen_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace

Overlay::Overlay(std::uint32_t n)
    : blocks_(n), attached_(n, true), attached_count_(n) {
  ASAP_REQUIRE(n >= 2, "overlay needs at least two nodes");
}

Overlay::Overlay(const Overlay& other)
    : blocks_(other.blocks_),
      edges_(other.edges_),
      attached_(other.attached_),
      num_edges_(other.num_edges_),
      dead_slots_(other.dead_slots_),
      attached_count_(other.attached_count_),
      churn_gen_(other.churn_gen_) {}

Overlay& Overlay::operator=(const Overlay& other) {
  if (this == &other) return *this;
  blocks_ = other.blocks_;
  edges_ = other.edges_;
  attached_ = other.attached_;
  num_edges_ = other.num_edges_;
  dead_slots_ = other.dead_slots_;
  attached_count_ = other.attached_count_;
  churn_gen_ = other.churn_gen_;
  live_cache_.clear();
  live_cache_gen_ = ~std::uint64_t{0};
  return *this;
}

Overlay Overlay::from_edge_list(
    std::uint32_t n, std::span<const std::pair<NodeId, NodeId>> edges) {
  Overlay g(n);
  std::vector<std::uint32_t> deg(n, 0);
  for (const auto& [a, b] : edges) {
    ++deg[a];
    ++deg[b];
  }
  std::uint64_t off = 0;
  for (NodeId i = 0; i < n; ++i) {
    const std::uint32_t cap = deg[i] + kBlockHeadroom;
    g.blocks_[i] = Block{off, 0, cap};
    off += cap;
  }
  g.edges_.resize(off);
  for (const auto& [a, b] : edges) {
    Block& ba = g.blocks_[a];
    Block& bb = g.blocks_[b];
    g.edges_[ba.off + ba.deg++] = b;
    g.edges_[bb.off + bb.deg++] = a;
  }
  g.num_edges_ = edges.size();
  return g;
}

void Overlay::grow_block(NodeId n, std::uint32_t new_cap) {
  Block& b = blocks_[n];
  ASAP_DCHECK(new_cap > b.cap);
  const std::uint64_t fresh_off = edges_.size();
  edges_.resize(fresh_off + new_cap);
  std::copy_n(edges_.begin() + static_cast<std::ptrdiff_t>(b.off), b.deg,
              edges_.begin() + static_cast<std::ptrdiff_t>(fresh_off));
  dead_slots_ += b.cap;
  b.off = fresh_off;
  b.cap = new_cap;
}

void Overlay::push_neighbor(NodeId n, NodeId v) {
  if (blocks_[n].deg == blocks_[n].cap) {
    const std::uint32_t cap = blocks_[n].cap;
    grow_block(n, std::max<std::uint32_t>(4, cap + cap / 2 + 1));
    maybe_compact();
  }
  Block& b = blocks_[n];
  edges_[b.off + b.deg++] = v;
}

void Overlay::remove_neighbor(NodeId n, NodeId v) {
  Block& b = blocks_[n];
  auto* first = edges_.data() + b.off;
  auto* last = first + b.deg;
  auto* tail = std::remove(first, last, v);
  b.deg = static_cast<std::uint32_t>(tail - first);
}

bool Overlay::add_edge(NodeId a, NodeId b) {
  ASAP_DCHECK(a < blocks_.size() && b < blocks_.size());
  if (a == b) return false;
  const auto na = neighbors(a);
  if (std::find(na.begin(), na.end(), b) != na.end()) return false;
  push_neighbor(a, b);
  push_neighbor(b, a);
  ++num_edges_;
  return true;
}

double Overlay::avg_degree() const {
  if (attached_count_ == 0) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(attached_count_);
}

void Overlay::detach(NodeId n) {
  ASAP_REQUIRE(n < blocks_.size(), "detach: unknown node");
  if (!attached_[n]) return;
  const Block& bn = blocks_[n];
  for (std::uint32_t i = 0; i < bn.deg; ++i) {
    remove_neighbor(edges_[bn.off + i], n);
    --num_edges_;
  }
  blocks_[n].deg = 0;  // capacity stays for a potential rejoin
  attached_[n] = false;
  --attached_count_;
  ++churn_gen_;
  maybe_compact();
}

NodeId Overlay::attach_new(std::uint32_t target_degree, Rng& rng) {
  const auto id = static_cast<NodeId>(blocks_.size());
  blocks_.push_back(Block{edges_.size(), 0, 0});
  attached_.push_back(true);
  ++attached_count_;
  ++churn_gen_;

  std::vector<NodeId> candidates = attached_nodes();
  // The new node itself is already attached; exclude it.
  candidates.pop_back();
  rng.shuffle(candidates);
  const std::size_t want = std::min<std::size_t>(target_degree,
                                                 candidates.size());
  for (std::size_t i = 0; i < want; ++i) add_edge(id, candidates[i]);
  return id;
}

void Overlay::reattach(NodeId n, std::uint32_t target_degree, Rng& rng) {
  ASAP_REQUIRE(n < blocks_.size(), "reattach: unknown node");
  if (attached_[n]) return;
  attached_[n] = true;
  ++attached_count_;
  ++churn_gen_;
  std::vector<NodeId> candidates = attached_nodes();
  candidates.erase(std::remove(candidates.begin(), candidates.end(), n),
                   candidates.end());
  rng.shuffle(candidates);
  const std::size_t want =
      std::min<std::size_t>(target_degree, candidates.size());
  for (std::size_t i = 0; i < want; ++i) add_edge(n, candidates[i]);
}

std::vector<NodeId> Overlay::attached_nodes() const {
  std::vector<NodeId> out;
  out.reserve(attached_count_);
  for (NodeId n = 0; n < blocks_.size(); ++n) {
    if (attached_[n]) out.push_back(n);
  }
  return out;
}

std::span<const NodeId> Overlay::attached_view() const {
  if (live_cache_gen_ != churn_gen_) {
    live_cache_.clear();
    live_cache_.reserve(attached_count_);
    for (NodeId n = 0; n < blocks_.size(); ++n) {
      if (attached_[n]) live_cache_.push_back(n);
    }
    live_cache_gen_ = churn_gen_;
  }
  return live_cache_;
}

bool Overlay::connected() const {
  if (attached_count_ == 0) return true;
  const auto live = attached_view();
  std::vector<bool> seen(blocks_.size(), false);
  std::deque<NodeId> frontier{live.front()};
  seen[live.front()] = true;
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    ++visited;
    for (NodeId nb : neighbors(cur)) {
      if (!seen[nb]) {
        seen[nb] = true;
        frontier.push_back(nb);
      }
    }
  }
  return visited == live.size();
}

std::vector<std::uint32_t> Overlay::degree_histogram() const {
  std::vector<std::uint32_t> hist;
  for (NodeId n = 0; n < blocks_.size(); ++n) {
    if (!attached_[n]) continue;
    const auto d = blocks_[n].deg;
    if (d >= hist.size()) hist.resize(d + 1, 0);
    ++hist[d];
  }
  return hist;
}

void Overlay::compact() {
  std::vector<NodeId> fresh;
  fresh.reserve(2 * num_edges_ +
                std::uint64_t{kBlockHeadroom} * attached_count_);
  std::uint64_t off = 0;
  for (NodeId n = 0; n < blocks_.size(); ++n) {
    Block& b = blocks_[n];
    const std::uint32_t cap = b.deg > 0 || attached_[n]
                                  ? b.deg + kBlockHeadroom
                                  : 0;
    fresh.resize(off + cap);
    std::copy_n(edges_.begin() + static_cast<std::ptrdiff_t>(b.off), b.deg,
                fresh.begin() + static_cast<std::ptrdiff_t>(off));
    b.off = off;
    b.cap = cap;
    off += cap;
  }
  edges_ = std::move(fresh);
  dead_slots_ = 0;
}

void Overlay::maybe_compact() {
  if (dead_slots_ > kCompactMinDeadSlots && dead_slots_ * 2 > edges_.size()) {
    compact();
  }
}

std::uint64_t Overlay::memory_bytes() const {
  return blocks_.capacity() * sizeof(Block) +
         edges_.capacity() * sizeof(NodeId) + attached_.capacity() / 8 +
         live_cache_.capacity() * sizeof(NodeId);
}

void Overlay::ensure_connected(Rng& rng) {
  // Union-find over attached nodes.
  std::vector<NodeId> parent(blocks_.size());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](NodeId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (NodeId n = 0; n < blocks_.size(); ++n) {
    for (NodeId nb : neighbors(n)) {
      const NodeId ra = find(n), rb = find(nb);
      if (ra != rb) parent[ra] = rb;
    }
  }
  // Collect one representative per component, then chain them with edges
  // between random members (we use the representative; a single bridge per
  // component pair is enough and barely perturbs the degree distribution).
  std::vector<NodeId> reps;
  for (NodeId n = 0; n < blocks_.size(); ++n) {
    if (attached_[n] && find(n) == n) reps.push_back(n);
  }
  rng.shuffle(reps);
  for (std::size_t i = 1; i < reps.size(); ++i) {
    add_edge(reps[i - 1], reps[i]);
    parent[find(reps[i - 1])] = find(reps[i]);
  }
}

Overlay Overlay::random(std::uint32_t n, double avg_degree, Rng& rng) {
  ASAP_REQUIRE(avg_degree >= 2.0, "random overlay needs mean degree >= 2");
  ASAP_REQUIRE(avg_degree < n, "mean degree must be below node count");
  // Spanning tree first (connectivity), then random extra edges up to the
  // target edge count m = n * avg_degree / 2.
  const auto target_edges =
      static_cast<std::uint64_t>(avg_degree * n / 2.0);
  EdgeCollector col(target_edges);
  for (NodeId i = 1; i < n; ++i) {
    col.add(i, static_cast<NodeId>(rng.below(i)));
  }
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = target_edges * 50;
  while (col.count() < target_edges && attempts++ < max_attempts) {
    const auto a = static_cast<NodeId>(rng.below(n));
    const auto b = static_cast<NodeId>(rng.below(n));
    col.add(a, b);
  }
  return from_edge_list(n, col.edges());
}

namespace {

/// Configuration-model pairing of a degree sequence, discarding self-loops
/// and duplicate edges (an "erased configuration model").
void pair_degree_sequence(EdgeCollector& col, std::vector<std::uint32_t>& deg,
                          Rng& rng) {
  std::vector<NodeId> stubs;
  stubs.reserve(std::accumulate(deg.begin(), deg.end(), 0ULL));
  for (NodeId n = 0; n < deg.size(); ++n) {
    for (std::uint32_t k = 0; k < deg[n]; ++k) stubs.push_back(n);
  }
  rng.shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    col.add(stubs[i], stubs[i + 1]);
  }
}

}  // namespace

Overlay Overlay::powerlaw(std::uint32_t n, double avg_degree, double alpha,
                          Rng& rng) {
  ASAP_REQUIRE(avg_degree >= 1.5, "power-law overlay mean degree too small");
  const auto dmax =
      std::max<std::uint32_t>(16, static_cast<std::uint32_t>(avg_degree * 8));
  auto deg = powerlaw_degree_sequence(n, alpha, 1, dmax, avg_degree, rng);
  EdgeCollector col(static_cast<std::uint64_t>(avg_degree * n / 2.0));
  pair_degree_sequence(col, deg, rng);
  Overlay g = from_edge_list(n, col.edges());
  g.ensure_connected(rng);
  return g;
}

Overlay Overlay::interest_clustered(std::uint32_t n, double avg_degree,
                                    std::span<const std::uint8_t> group_of,
                                    double cluster_fraction, Rng& rng) {
  ASAP_REQUIRE(group_of.size() >= n, "group assignment too short");
  ASAP_REQUIRE(cluster_fraction >= 0.0 && cluster_fraction <= 1.0,
               "cluster fraction out of [0,1]");
  ASAP_REQUIRE(avg_degree >= 2.0 && avg_degree < n,
               "interest-clustered overlay mean degree out of range");
  // Bucket nodes by group for intra-group edge sampling.
  std::uint8_t max_group = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    max_group = std::max(max_group, group_of[i]);
  }
  std::vector<std::vector<NodeId>> buckets(max_group + 1);
  for (NodeId i = 0; i < n; ++i) buckets[group_of[i]].push_back(i);

  const auto target_edges = static_cast<std::uint64_t>(avg_degree * n / 2.0);
  EdgeCollector col(target_edges);
  // Connectivity first: a random spanning tree over all nodes.
  for (NodeId i = 1; i < n; ++i) {
    col.add(i, static_cast<NodeId>(rng.below(i)));
  }
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = target_edges * 60;
  while (col.count() < target_edges && attempts++ < max_attempts) {
    const auto a = static_cast<NodeId>(rng.below(n));
    NodeId b;
    if (rng.chance(cluster_fraction)) {
      const auto& mates = buckets[group_of[a]];
      if (mates.size() < 2) continue;
      b = mates[rng.below(mates.size())];
    } else {
      b = static_cast<NodeId>(rng.below(n));
    }
    col.add(a, b);
  }
  return from_edge_list(n, col.edges());
}

Overlay Overlay::crawled_like(std::uint32_t n, double avg_degree, Rng& rng) {
  ASAP_REQUIRE(avg_degree >= 1.5, "crawled overlay mean degree too small");
  ASAP_REQUIRE(n >= 20, "crawled overlay needs at least 20 nodes");
  // Limewire's crawled topology is two-tier: a well-connected ultrapeer
  // mesh (~15% of peers) with leaves hanging off it — which yields a low
  // diameter despite the sparse mean degree (3.35 in the paper's crawl).
  // Solve for the tier degrees: with ultrapeer fraction f, leaf attach
  // count a and ultrapeer mesh degree m, mean degree = 2*(1-f)*a + f*m.
  const auto ultras = std::max<std::uint32_t>(8, n * 3 / 20);  // ~15%
  const double f = static_cast<double>(ultras) / n;
  const double leaf_attach = 1.4;  // leaves connect to 1-2 ultrapeers
  const double mesh_degree =
      std::max(3.0, (avg_degree - 2.0 * (1.0 - f) * leaf_attach) / f);

  EdgeCollector col(static_cast<std::uint64_t>(avg_degree * n / 2.0));
  // Ultrapeer mesh: connected random graph among [0, ultras).
  for (NodeId i = 1; i < ultras; ++i) {
    col.add(i, static_cast<NodeId>(rng.below(i)));
  }
  const auto mesh_edges =
      static_cast<std::uint64_t>(mesh_degree * ultras / 2.0);
  std::uint64_t guard = 0;
  while (col.count() < mesh_edges && guard++ < mesh_edges * 50) {
    col.add(static_cast<NodeId>(rng.below(ultras)),
            static_cast<NodeId>(rng.below(ultras)));
  }

  // Leaves: each attaches to 1-2 random ultrapeers.
  for (NodeId leaf = ultras; leaf < n; ++leaf) {
    const std::uint32_t links = rng.chance(leaf_attach - 1.0) ? 2 : 1;
    for (std::uint32_t k = 0; k < links; ++k) {
      col.add(leaf, static_cast<NodeId>(rng.below(ultras)));
    }
  }
  Overlay g = from_edge_list(n, col.edges());
  g.ensure_connected(rng);
  return g;
}

}  // namespace asap::overlay
