// Structural metrics of overlay graphs.
//
// The paper's three topologies differ exactly in these properties (degree
// skew, clustering, path lengths) — which drive flood reach, walk mixing
// and thus every search result. Sampled estimators keep costs at
// O(samples * (V + E)).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "overlay/overlay.hpp"

namespace asap::overlay {

/// BFS hop distances from `source` over attached nodes; kUnreachable for
/// unreached or detached nodes.
inline constexpr std::uint32_t kUnreachable = 0xFFFFFFFF;
std::vector<std::uint32_t> bfs_depths(const Overlay& g, NodeId source);

/// Mean local clustering coefficient over up to `samples` random attached
/// nodes with degree >= 2.
double clustering_coefficient(const Overlay& g, std::uint32_t samples,
                              Rng& rng);

struct PathStats {
  double mean_hops = 0.0;      // over reachable pairs sampled
  std::uint32_t max_hops = 0;  // eccentricity lower bound (diameter >= this)
  double reachable_fraction = 1.0;
};

/// BFS from up to `sources` random attached nodes; aggregates distances to
/// every attached node.
PathStats path_stats(const Overlay& g, std::uint32_t sources, Rng& rng);

}  // namespace asap::overlay
