// Unstructured P2P overlay graphs.
//
// Three generators mirror the paper's logical topologies (§IV-A):
//   * random     — connected uniform graph, average degree 5,
//   * power-law  — same average degree, degrees ~ d^-0.74,
//   * crawled    — Limewire-crawl-like: average degree 3.35 with a heavy
//                  degree tail (the crawl itself is not available; see
//                  DESIGN.md substitution #2).
//
// The overlay is mutable to support churn: departures detach a node's
// edges, joins attach a new node to random live peers.
//
// Storage is a pooled CSR-style slab (DESIGN.md §15): one `edges_` array
// shared by every node plus a 16-byte Block{offset, degree, capacity}
// header per node. `neighbors()` is a span into the slab — no per-node
// heap allocation, no pointer chasing — and churn stays O(degree): blocks
// carry capacity headroom, a block that outgrows its slot relocates to the
// slab tail, and abandoned slots are reclaimed by compaction once they
// dominate the slab. Generators collect a deduplicated edge list while
// drawing (the draw loops' termination conditions depend on the deduped
// count) and fill the CSR in one pass from exact degree counts.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace asap::overlay {

class Overlay {
 public:
  /// Connected Erdos-Renyi-style G(n, m) graph with the given mean degree.
  static Overlay random(std::uint32_t n, double avg_degree, Rng& rng);

  /// Degree-sequence (configuration-model) graph with degrees following a
  /// bounded power law d^-alpha, pinned to the given mean degree.
  static Overlay powerlaw(std::uint32_t n, double avg_degree, double alpha,
                          Rng& rng);

  /// Crawled-Limewire-like topology: sparse mean degree (3.35 in the paper)
  /// with a heavier tail than the power-law topology above.
  static Overlay crawled_like(std::uint32_t n, double avg_degree, Rng& rng);

  /// Edgeless graph over n node slots; callers add edges themselves (used
  /// to build derived views such as the superpeer mesh).
  static Overlay edgeless(std::uint32_t n) { return Overlay(n); }

  /// Semantic-overlay-network-style graph (SON, Crespo & Garcia-Molina —
  /// the interest-clustering work the paper's observation 4 builds on):
  /// each node spends `cluster_fraction` of its edges on peers from its
  /// own group and the rest on uniformly random peers (keeping the graph
  /// connected and low-diameter). `group_of[n]` assigns each node to a
  /// group (e.g. its primary interest class).
  static Overlay interest_clustered(std::uint32_t n, double avg_degree,
                                    std::span<const std::uint8_t> group_of,
                                    double cluster_fraction, Rng& rng);

  Overlay(const Overlay& other);
  Overlay& operator=(const Overlay& other);
  Overlay(Overlay&&) noexcept = default;
  Overlay& operator=(Overlay&&) noexcept = default;

  /// Number of node slots ever allocated (attached or not).
  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(blocks_.size());
  }
  std::uint64_t num_edges() const { return num_edges_; }
  double avg_degree() const;

  std::span<const NodeId> neighbors(NodeId n) const {
    ASAP_DCHECK(n < blocks_.size());
    const Block& b = blocks_[n];
    return {edges_.data() + b.off, b.deg};
  }
  std::uint32_t degree(NodeId n) const {
    ASAP_DCHECK(n < blocks_.size());
    return blocks_[n].deg;
  }

  /// True while the node has a slot in the overlay and has not departed.
  bool attached(NodeId n) const { return n < blocks_.size() && attached_[n]; }

  /// Number of currently attached nodes (maintained, O(1)).
  std::uint32_t attached_count() const { return attached_count_; }

  /// Detach a departing node: removes all incident edges.
  void detach(NodeId n);

  /// Attach a new node (returns its id) with edges to `target_degree`
  /// distinct attached peers chosen uniformly (fewer if the overlay is
  /// smaller than requested).
  NodeId attach_new(std::uint32_t target_degree, Rng& rng);

  /// Re-attach a previously detached node with fresh edges to
  /// `target_degree` random attached peers (a rejoin).
  void reattach(NodeId n, std::uint32_t target_degree, Rng& rng);

  /// Adds an undirected edge; ignores duplicates and self-loops.
  /// Returns true if an edge was added.
  bool add_edge(NodeId a, NodeId b);

  /// All currently attached node ids (fresh copy; prefer attached_view()
  /// on read-only paths).
  std::vector<NodeId> attached_nodes() const;

  /// Cached view of the attached node ids in ascending order. Rebuilt
  /// lazily after churn (tracked by a generation counter), so repeated
  /// calls between churn events are O(1) instead of an O(n) copy.
  /// Invalidated by detach/attach_new/reattach. Not safe to call
  /// concurrently on a shared overlay; the harness runs on per-run copies.
  std::span<const NodeId> attached_view() const;

  /// Bumps on every attach/detach/reattach; lets callers cache derived
  /// structures keyed on overlay membership.
  std::uint64_t churn_generation() const { return churn_gen_; }

  /// True if the attached subgraph is connected (BFS; for tests).
  bool connected() const;

  /// Degree histogram over attached nodes (index = degree). Reads only
  /// the CSR block headers, never the edge slab.
  std::vector<std::uint32_t> degree_histogram() const;

  /// Rebuilds the edge slab tightly (fresh per-block headroom, zero dead
  /// slots). Runs automatically when relocation garbage dominates the
  /// slab; public for tests and for callers done with churn.
  void compact();

  /// Heap bytes owned by the overlay (slab + headers + bookkeeping).
  std::uint64_t memory_bytes() const;

  /// Slab slots abandoned by block relocation (reclaimed by compact()).
  std::uint64_t dead_slots() const { return dead_slots_; }
  /// Total slab slots currently allocated (live + headroom + dead).
  std::uint64_t slab_slots() const { return edges_.size(); }

 private:
  /// Per-node CSR header: half-open slab range [off, off+cap) holding
  /// `deg` live neighbor ids.
  struct Block {
    std::uint64_t off = 0;
    std::uint32_t deg = 0;
    std::uint32_t cap = 0;
  };

  explicit Overlay(std::uint32_t n);

  /// Builds the CSR in one pass from a deduplicated edge list: exact
  /// degree counts first, then a single fill preserving list order (which
  /// matches the historical per-vector append order exactly).
  static Overlay from_edge_list(
      std::uint32_t n, std::span<const std::pair<NodeId, NodeId>> edges);

  /// Link all connected components into one by adding bridge edges
  /// between random members of distinct components.
  void ensure_connected(Rng& rng);

  /// Appends `v` to n's block, relocating the block to the slab tail when
  /// its capacity is exhausted.
  void push_neighbor(NodeId n, NodeId v);
  /// Order-preserving removal of `v` from n's block (std::remove).
  void remove_neighbor(NodeId n, NodeId v);
  void grow_block(NodeId n, std::uint32_t new_cap);
  void maybe_compact();

  std::vector<Block> blocks_;
  std::vector<NodeId> edges_;
  std::vector<bool> attached_;
  std::uint64_t num_edges_ = 0;
  std::uint64_t dead_slots_ = 0;
  std::uint32_t attached_count_ = 0;
  std::uint64_t churn_gen_ = 0;

  // Lazy live-node cache backing attached_view(); deliberately not copied
  // (worlds are shared read-only across runner threads — the copy each run
  // makes must not race on the mutable cache).
  mutable std::vector<NodeId> live_cache_;
  mutable std::uint64_t live_cache_gen_ = ~std::uint64_t{0};
};

}  // namespace asap::overlay
