// Unstructured P2P overlay graphs.
//
// Three generators mirror the paper's logical topologies (§IV-A):
//   * random     — connected uniform graph, average degree 5,
//   * power-law  — same average degree, degrees ~ d^-0.74,
//   * crawled    — Limewire-crawl-like: average degree 3.35 with a heavy
//                  degree tail (the crawl itself is not available; see
//                  DESIGN.md substitution #2).
//
// The overlay is mutable to support churn: departures detach a node's
// edges, joins attach a new node to random live peers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace asap::overlay {

class Overlay {
 public:
  /// Connected Erdos-Renyi-style G(n, m) graph with the given mean degree.
  static Overlay random(std::uint32_t n, double avg_degree, Rng& rng);

  /// Degree-sequence (configuration-model) graph with degrees following a
  /// bounded power law d^-alpha, pinned to the given mean degree.
  static Overlay powerlaw(std::uint32_t n, double avg_degree, double alpha,
                          Rng& rng);

  /// Crawled-Limewire-like topology: sparse mean degree (3.35 in the paper)
  /// with a heavier tail than the power-law topology above.
  static Overlay crawled_like(std::uint32_t n, double avg_degree, Rng& rng);

  /// Edgeless graph over n node slots; callers add edges themselves (used
  /// to build derived views such as the superpeer mesh).
  static Overlay edgeless(std::uint32_t n) { return Overlay(n); }

  /// Semantic-overlay-network-style graph (SON, Crespo & Garcia-Molina —
  /// the interest-clustering work the paper's observation 4 builds on):
  /// each node spends `cluster_fraction` of its edges on peers from its
  /// own group and the rest on uniformly random peers (keeping the graph
  /// connected and low-diameter). `group_of[n]` assigns each node to a
  /// group (e.g. its primary interest class).
  static Overlay interest_clustered(std::uint32_t n, double avg_degree,
                                    std::span<const std::uint8_t> group_of,
                                    double cluster_fraction, Rng& rng);

  /// Number of node slots ever allocated (attached or not).
  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(adj_.size());
  }
  std::uint64_t num_edges() const { return num_edges_; }
  double avg_degree() const;

  std::span<const NodeId> neighbors(NodeId n) const {
    ASAP_DCHECK(n < adj_.size());
    return {adj_[n].data(), adj_[n].size()};
  }
  std::uint32_t degree(NodeId n) const {
    ASAP_DCHECK(n < adj_.size());
    return static_cast<std::uint32_t>(adj_[n].size());
  }

  /// True while the node has a slot in the overlay and has not departed.
  bool attached(NodeId n) const { return n < adj_.size() && attached_[n]; }

  /// Detach a departing node: removes all incident edges.
  void detach(NodeId n);

  /// Attach a new node (returns its id) with edges to `target_degree`
  /// distinct attached peers chosen uniformly (fewer if the overlay is
  /// smaller than requested).
  NodeId attach_new(std::uint32_t target_degree, Rng& rng);

  /// Re-attach a previously detached node with fresh edges to
  /// `target_degree` random attached peers (a rejoin).
  void reattach(NodeId n, std::uint32_t target_degree, Rng& rng);

  /// Adds an undirected edge; ignores duplicates and self-loops.
  /// Returns true if an edge was added.
  bool add_edge(NodeId a, NodeId b);

  /// All currently attached node ids (fresh copy).
  std::vector<NodeId> attached_nodes() const;

  /// True if the attached subgraph is connected (BFS; for tests).
  bool connected() const;

  /// Degree histogram over attached nodes (index = degree).
  std::vector<std::uint32_t> degree_histogram() const;

 private:
  explicit Overlay(std::uint32_t n);

  /// Link all connected components into one by adding bridge edges
  /// between random members of distinct components.
  void ensure_connected(Rng& rng);

  std::vector<std::vector<NodeId>> adj_;
  std::vector<bool> attached_;
  std::uint64_t num_edges_ = 0;
};

}  // namespace asap::overlay
