#include "overlay/graph_metrics.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace asap::overlay {

std::vector<std::uint32_t> bfs_depths(const Overlay& g, NodeId source) {
  ASAP_REQUIRE(g.attached(source), "BFS source must be attached");
  std::vector<std::uint32_t> depth(g.num_nodes(), kUnreachable);
  std::deque<NodeId> frontier{source};
  depth[source] = 0;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    for (const NodeId nb : g.neighbors(cur)) {
      if (depth[nb] == kUnreachable) {
        depth[nb] = depth[cur] + 1;
        frontier.push_back(nb);
      }
    }
  }
  return depth;
}

double clustering_coefficient(const Overlay& g, std::uint32_t samples,
                              Rng& rng) {
  const auto nodes = g.attached_view();
  ASAP_REQUIRE(!nodes.empty(), "empty overlay");
  double total = 0.0;
  std::uint32_t counted = 0;
  for (std::uint32_t s = 0; s < samples * 4 && counted < samples; ++s) {
    const NodeId n = nodes[rng.below(nodes.size())];
    const auto nbs = g.neighbors(n);
    if (nbs.size() < 2) continue;
    // Count links among neighbors.
    std::uint32_t links = 0;
    for (std::size_t i = 0; i < nbs.size(); ++i) {
      const auto nbs_i = g.neighbors(nbs[i]);
      for (std::size_t j = i + 1; j < nbs.size(); ++j) {
        if (std::find(nbs_i.begin(), nbs_i.end(), nbs[j]) != nbs_i.end()) {
          ++links;
        }
      }
    }
    const double possible =
        static_cast<double>(nbs.size()) * (nbs.size() - 1) / 2.0;
    total += links / possible;
    ++counted;
  }
  return counted == 0 ? 0.0 : total / counted;
}

PathStats path_stats(const Overlay& g, std::uint32_t sources, Rng& rng) {
  const auto nodes = g.attached_view();
  ASAP_REQUIRE(!nodes.empty(), "empty overlay");
  PathStats out;
  std::uint64_t pairs = 0, reached = 0, hops_total = 0;
  for (std::uint32_t s = 0; s < sources; ++s) {
    const NodeId src = nodes[rng.below(nodes.size())];
    const auto depth = bfs_depths(g, src);
    for (const NodeId n : nodes) {
      if (n == src) continue;
      ++pairs;
      if (depth[n] != kUnreachable) {
        ++reached;
        hops_total += depth[n];
        out.max_hops = std::max(out.max_hops, depth[n]);
      }
    }
  }
  out.mean_hops =
      reached == 0 ? 0.0
                   : static_cast<double>(hops_total) /
                         static_cast<double>(reached);
  out.reachable_fraction =
      pairs == 0 ? 1.0
                 : static_cast<double>(reached) / static_cast<double>(pairs);
  return out;
}

}  // namespace asap::overlay
