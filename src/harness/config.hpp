// Experiment configuration presets (paper §IV-A/B).
//
// Two presets:
//   * kSmall — ~5.2k physical nodes, 2,000 peers, 6,000 queries. Budgets
//     scale with the population so relative reach matches the paper-scale
//     setup. This is the default for benches on a laptop-class machine.
//   * kPaper — the paper's exact framework: 51,984 physical nodes, 10,000
//     peers, 30,000 queries, TTL 6 floods, 5x1024 walks, GSA budget 8,000,
//     ad budget unit M0 = 3,000, 1,000 joins + 1,000 leaves.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "faults/fault_config.hpp"
#include "net/transit_stub.hpp"
#include "sim/size_model.hpp"
#include "trace/content_model.hpp"
#include "trace/trace.hpp"

namespace asap::harness {

enum class Preset : std::uint8_t { kSmall, kPaper };

enum class TopologyKind : std::uint8_t { kRandom, kPowerlaw, kCrawled };

const char* topology_name(TopologyKind t);
/// Inverse of topology_name(); nullopt for unknown names.
std::optional<TopologyKind> topology_from_name(std::string_view name);

const char* preset_name(Preset p);
/// Inverse of preset_name(); nullopt for unknown names.
std::optional<Preset> preset_from_name(std::string_view name);

struct ExperimentConfig {
  Preset preset = Preset::kSmall;
  TopologyKind topology = TopologyKind::kCrawled;
  std::uint64_t seed = 42;

  net::TransitStubParams phys;
  trace::ContentModelParams content;
  trace::TraceParams trace;
  sim::SizeModel sizes;

  // Overlay shape (paper §IV-A).
  double random_avg_degree = 5.0;
  double powerlaw_avg_degree = 5.0;
  double powerlaw_alpha = 0.74;  // paper: alpha = -0.74
  double crawled_avg_degree = 3.35;
  std::uint32_t join_degree = 4;  // edges a joining node establishes

  /// Ads are disseminated for this long before the trace starts; the
  /// measurement window begins at `warmup`.
  Seconds warmup = 60.0;

  /// Fault-injection configuration (faults/fault_config.hpp). All-zero by
  /// default: no injector is built and runs stay bit-identical to the
  /// committed goldens. RunOptions::faults overrides this per run.
  faults::FaultConfig faults;

  /// Synthesize trace events on demand during the run instead of
  /// materializing the O(events) vector in the World. The event stream is
  /// bit-identical either way (tests/trace/streaming_trace_test.cpp);
  /// apply_scale turns this on automatically at >= 100k nodes.
  bool stream_trace = false;

  /// Node-count override applied by apply_scale (0 = preset default).
  /// Recorded so result JSON and matrix specs can round-trip the axis.
  std::uint32_t scale = 0;

  /// Re-dimensions this config for an `n`-node population (the --scale
  /// axis): initial nodes, joiner slots, physical network capacity, capped
  /// churn counts, and a keyword-pool size that keeps term selectivity
  /// comparable across scales. Leaves every other knob (budgets, rates,
  /// warm-up) at its preset value so small-scale behaviour is unchanged.
  void apply_scale(std::uint32_t n);

  static ExperimentConfig make(Preset preset, TopologyKind topology,
                               std::uint64_t seed = 42);
};

}  // namespace asap::harness
