#include "harness/world.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "trace/streaming_trace_gen.hpp"
#include "trace/trace_gen.hpp"

namespace asap::harness {

namespace {

overlay::Overlay build_overlay(const ExperimentConfig& cfg,
                               std::uint32_t nodes, Rng& rng) {
  switch (cfg.topology) {
    case TopologyKind::kRandom:
      return overlay::Overlay::random(nodes, cfg.random_avg_degree, rng);
    case TopologyKind::kPowerlaw:
      return overlay::Overlay::powerlaw(nodes, cfg.powerlaw_avg_degree,
                                        cfg.powerlaw_alpha, rng);
    case TopologyKind::kCrawled:
      return overlay::Overlay::crawled_like(nodes, cfg.crawled_avg_degree,
                                            rng);
  }
  throw ConfigError("unknown topology kind");
}

}  // namespace

World build_world(const ExperimentConfig& cfg) {
  // Independent generator streams so a change in one stage (say, overlay
  // construction) does not perturb the others.
  Rng master(cfg.seed);
  Rng phys_rng = master.fork();
  Rng overlay_rng = master.fork();
  Rng content_rng = master.fork();
  Rng trace_rng = master.fork();
  Rng placement_rng = master.fork();

  auto phys = net::TransitStubNetwork::generate(cfg.phys, phys_rng);

  auto model = trace::ContentModel::build(cfg.content, content_rng);
  const std::uint32_t slots = model.total_node_slots();
  ASAP_REQUIRE(slots <= phys.num_nodes(),
               "more P2P peers than physical nodes");

  auto overlay =
      build_overlay(cfg, model.params().initial_nodes, overlay_rng);

  // Map every node slot (initial + joiners) to a distinct physical node.
  std::vector<PhysNodeId> node_phys;
  {
    auto picks = placement_rng.sample_indices(phys.num_nodes(), slots);
    node_phys.assign(picks.begin(), picks.end());
  }

  trace::Trace tr;
  StreamingTraceInfo streaming;
  if (cfg.stream_trace) {
    // Build pre-pass: run the stream once in build mode so the model gains
    // its mid-trace mints, recording only what replay needs to re-derive
    // the identical stream — the pre-stream RNG state, the corpus position
    // where mints begin, and the churn bitmap the fault planner wants. The
    // events themselves are discarded; runs re-synthesize them on demand.
    streaming.enabled = true;
    streaming.rng = trace_rng;
    streaming.mint_base = static_cast<DocId>(model.num_docs());
    streaming.churned.assign(model.params().initial_nodes, 0);
    trace::StreamingTraceGenerator gen(model, cfg.trace, trace_rng);
    trace::TraceEvent ev;
    while (gen.next(ev)) {
      if ((ev.type == trace::TraceEventType::kJoin ||
           ev.type == trace::TraceEventType::kLeave ||
           ev.type == trace::TraceEventType::kRejoin) &&
          ev.node < model.params().initial_nodes) {
        streaming.churned[ev.node] = 1;
      }
    }
    tr.num_queries = gen.num_queries();
    tr.num_changes = gen.num_changes();
    tr.num_joins = gen.num_joins();
    tr.num_leaves = gen.num_leaves();
    tr.num_rejoins = gen.num_rejoins();
    tr.horizon = gen.last_event_time();
  } else {
    trace::TraceGenerator gen(model, cfg.trace, trace_rng);
    tr = gen.generate();
  }

  return World{cfg,
               std::move(phys),
               std::move(overlay),
               std::move(node_phys),
               std::move(model),
               std::move(tr),
               std::move(streaming)};
}

}  // namespace asap::harness
