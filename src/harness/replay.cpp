#include "harness/replay.hpp"

#include <chrono>
#include <cmath>

#include "common/error.hpp"
#include "common/resource.hpp"
#include "common/rng.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "search/context.hpp"
#include "sim/engine.hpp"
#include "sim/liveness.hpp"
#include "trace/live_content.hpp"
#include "trace/streaming_trace_gen.hpp"

namespace asap::harness {

const char* algo_name(AlgoKind k) {
  switch (k) {
    case AlgoKind::kFlooding:
      return "flooding";
    case AlgoKind::kRandomWalk:
      return "random-walk";
    case AlgoKind::kGsa:
      return "gsa";
    case AlgoKind::kAsapFld:
      return "asap(fld)";
    case AlgoKind::kAsapRw:
      return "asap(rw)";
    case AlgoKind::kAsapGsa:
      return "asap(gsa)";
    case AlgoKind::kAsapAdaptive:
      return "asap-adaptive";
    case AlgoKind::kAsapDelta:
      return "asap-delta";
  }
  return "?";
}

std::optional<AlgoKind> algo_from_name(std::string_view name) {
  for (const auto k : kExtendedAlgos) {
    if (name == algo_name(k)) return k;
  }
  return std::nullopt;
}

bool is_asap(AlgoKind k) {
  return k == AlgoKind::kAsapFld || k == AlgoKind::kAsapRw ||
         k == AlgoKind::kAsapGsa || k == AlgoKind::kAsapAdaptive ||
         k == AlgoKind::kAsapDelta;
}

std::uint64_t trial_seed_salt(std::uint32_t trial) {
  if (trial == 0) return 0;  // trial 0 == the unsalted canonical run
  return SplitMix64(trial).next();
}

std::vector<sim::Traffic> load_categories(AlgoKind k) {
  if (is_asap(k)) {
    // kPackedAd is always zero for the vanilla variants, so listing it
    // changes no legacy metric (zero-byte categories contribute nothing
    // to load or breakdown shares).
    return {sim::Traffic::kConfirm, sim::Traffic::kAdsRequest,
            sim::Traffic::kFullAd, sim::Traffic::kPatchAd,
            sim::Traffic::kRefreshAd, sim::Traffic::kPackedAd};
  }
  return {sim::Traffic::kQuery};
}

namespace {

search::Scheme scheme_of(AlgoKind k) {
  switch (k) {
    case AlgoKind::kFlooding:
    case AlgoKind::kAsapFld:
      return search::Scheme::kFlooding;
    case AlgoKind::kRandomWalk:
    case AlgoKind::kAsapRw:
    case AlgoKind::kAsapAdaptive:
    case AlgoKind::kAsapDelta:
      return search::Scheme::kRandomWalk;
    case AlgoKind::kGsa:
    case AlgoKind::kAsapGsa:
      return search::Scheme::kGsa;
  }
  return search::Scheme::kFlooding;
}

}  // namespace

search::BaselineParams default_baseline_params(AlgoKind k, Preset preset) {
  ASAP_REQUIRE(!is_asap(k), "not a baseline algorithm");
  return preset == Preset::kPaper
             ? search::BaselineParams::paper(scheme_of(k))
             : search::BaselineParams::small(scheme_of(k));
}

ads::AsapParams default_asap_params(AlgoKind k, Preset preset) {
  ASAP_REQUIRE(is_asap(k), "not an ASAP variant");
  auto params = preset == Preset::kPaper ? ads::AsapParams::paper(scheme_of(k))
                                         : ads::AsapParams::small(scheme_of(k));
  if (k == AlgoKind::kAsapAdaptive) {
    params.ad_mode = ads::AdMode::kAdaptive;
  } else if (k == AlgoKind::kAsapDelta) {
    params.ad_mode = ads::AdMode::kDelta;
  }
  if (params.ad_mode != ads::AdMode::kVanilla) {
    // Adaptive variants ship the stale-readmit hygiene fix by default; the
    // vanilla variants keep the legacy (0 = off) behaviour bit for bit.
    params.stale_readmit_backoff = 30.0;
  }
  return params;
}

RunResult run_experiment(const World& world, AlgoKind kind,
                         const RunOptions& opts) {
  const auto wall_start = std::chrono::steady_clock::now();
  const auto& cfg = world.cfg;
  const Seconds warmup = cfg.warmup;
  const Seconds horizon = warmup + world.trace.horizon + 30.0;

  // Per-run mutable state.
  overlay::Overlay ov = world.base_overlay;  // copy: churn mutates it
  trace::LiveContent live(world.model);
  trace::ContentIndex index(world.model, live);
  sim::Liveness liveness(world.model.total_node_slots(),
                         world.model.params().initial_nodes);
  sim::Engine engine(opts.engine_tuning);
  sim::BandwidthLedger ledger(horizon);
  // The algorithm's randomness and the world's churn randomness are kept
  // in separate streams so every algorithm sees identical churn.
  Rng algo_rng(cfg.seed ^ 0x517CC1B727220A95ULL ^ opts.seed_salt);
  Rng churn_rng(cfg.seed ^ 0x2545F4914F6CDD1DULL);

  search::Ctx ctx{ov,     world.phys, world.node_phys, world.model, live,
                  index,  engine,     ledger,          cfg.sizes,   algo_rng};
  ASAP_REQUIRE(opts.message_loss >= 0.0 && opts.message_loss <= 1.0,
               "message loss probability out of [0,1]");
  ctx.message_loss = opts.message_loss;

  std::unique_ptr<sim::SimAuditor> auditor;
  if (opts.audit) {
    auditor = std::make_unique<sim::SimAuditor>();
    engine.set_auditor(auditor.get());
    ledger.set_auditor(auditor.get());
    ctx.auditor = auditor.get();
  }

  // Observability is strictly read-only: the observer sees engine and
  // ledger activity but never schedules events or touches the RNG, so the
  // run digest is identical with or without it.
  if (opts.observer != nullptr) {
    engine.set_observer(opts.observer);
    ledger.set_observer(opts.observer);
    ctx.obs = opts.observer;
  }

  // Fault layer: the plan derives from the world seed alone (same schedule
  // for every algorithm); the injector's own verdict RNG is salted per
  // trial like the algorithm stream. Without an explicit opts.faults and
  // with an all-zero cfg.faults, nothing is built and the run is
  // bit-identical to the historical harness.
  const bool faults_on = opts.faults.has_value() || cfg.faults.any();
  const faults::FaultConfig fault_cfg = opts.faults.value_or(cfg.faults);
  std::unique_ptr<faults::FaultPlan> plan;
  std::unique_ptr<faults::FaultInjector> injector;
  if (faults_on) {
    fault_cfg.validate();
    // Streaming worlds never hold the events vector; the build pre-pass
    // recorded the churn bitmap the planner needs instead.
    plan = std::make_unique<faults::FaultPlan>(
        world.streaming.enabled
            ? faults::FaultPlan::build(
                  fault_cfg, cfg.seed, world.model.params().initial_nodes,
                  std::span<const std::uint8_t>(world.streaming.churned),
                  warmup, warmup + world.trace.horizon,
                  world.phys.params().total_stub_domains())
            : faults::FaultPlan::build(
                  fault_cfg, cfg.seed, world.model.params().initial_nodes,
                  world.trace.events, warmup, warmup + world.trace.horizon,
                  world.phys.params().total_stub_domains()));
    injector = std::make_unique<faults::FaultInjector>(
        *plan, world.phys, cfg.seed ^ 0x9E3779B97F4A7C15ULL ^ opts.seed_salt);
    ctx.faults = injector.get();
  }

  std::unique_ptr<search::SearchAlgorithm> algo;
  if (is_asap(kind)) {
    auto params = opts.asap.value_or(default_asap_params(kind, cfg.preset));
    if (faults_on) {
      // Hardening knobs ride the fault config so a faults-off run keeps
      // the legacy protocol behaviour bit for bit (0 = protocol default).
      if (fault_cfg.confirm_attempts > 0) {
        params.confirm_max_attempts = fault_cfg.confirm_attempts;
      }
      if (fault_cfg.stale_strikes > 0) {
        params.stale_timeout_strikes = fault_cfg.stale_strikes;
      }
      if (fault_cfg.confirm_backoff > 0.0) {
        params.confirm_retry_backoff = fault_cfg.confirm_backoff;
      }
      // Defense knobs (PR: adversarial resilience). Same contract as the
      // hardening knobs above: all-default means bit-identical runs.
      if (fault_cfg.trust_enabled) {
        params.trust_enabled = true;
        params.trust_reward = fault_cfg.trust_reward;
        params.trust_strike_decay = fault_cfg.trust_strike_decay;
        params.trust_quarantine_threshold =
            fault_cfg.trust_quarantine_threshold;
        params.trust_quarantine_backoff = fault_cfg.trust_quarantine_backoff;
      }
      if (fault_cfg.trust_fill_gate > 0.0) {
        params.trust_fill_gate = fault_cfg.trust_fill_gate;
      }
      if (fault_cfg.strike_per_chain) params.strike_per_chain = true;
      if (fault_cfg.pending_query_cap > 0) {
        params.pending_query_cap = fault_cfg.pending_query_cap;
      }
      if (fault_cfg.ttl_clamp_depth > 0) {
        params.ttl_clamp_depth = fault_cfg.ttl_clamp_depth;
      }
    }
    algo = std::make_unique<ads::AsapProtocol>(ctx, params);
  } else {
    const auto params =
        opts.baseline.value_or(default_baseline_params(kind, cfg.preset));
    algo = std::make_unique<search::BaselineSearch>(ctx, params);
  }
  if (faults_on) {
    algo->set_fault_onset(plan->first_fault_time());
    if (plan->storm_queries().empty()) {
      injector->arm(engine, ov, live, liveness, opts.observer);
    } else {
      // Flash-crowd queries run the full protocol path (bandwidth, pending
      // slots, shedding) but are excluded from SearchStats — the measured
      // workload stays the legitimate trace.
      search::SearchAlgorithm* raw = algo.get();
      injector->arm(engine, ov, live, liveness, opts.observer,
                    [raw](const faults::FaultPlan::StormQuery& sq) {
                      trace::TraceEvent ev;
                      ev.type = trace::TraceEventType::kQuery;
                      ev.time = sq.at;
                      ev.node = sq.node;
                      ev.terms[0] = sq.term;
                      ev.num_terms = 1;
                      raw->inject_synthetic_query(ev);
                    });
    }
  }

  obs::PhaseProfiler profiler;
  profiler.begin("warm-up", engine.executed());
  algo->warm_up(warmup);
  // Drain warm-up dissemination before the trace replay so the profiler
  // attributes its events to the right phase. This is a no-op for the
  // digest: the first trace event sits at >= warmup, so these events
  // would execute first (in identical heap order) either way.
  engine.run_until(warmup);

  profiler.begin("query-replay", engine.executed());
  // Event source: the materialized vector, or (streaming worlds) a
  // replay-mode generator re-synthesizing the identical stream on demand
  // against the immutable model.
  std::optional<trace::StreamingTraceGenerator> stream;
  if (world.streaming.enabled) {
    stream.emplace(world.model, cfg.trace, world.streaming.rng,
                   world.streaming.mint_base);
  }
  std::size_t event_cursor = 0;
  auto next_event = [&](trace::TraceEvent& out) -> bool {
    if (stream) return stream->next(out);
    if (event_cursor >= world.trace.events.size()) return false;
    out = world.trace.events[event_cursor++];
    return true;
  };
  trace::TraceEvent ev;
  while (next_event(ev)) {
    const Seconds t = ev.time + warmup;
    engine.run_until(t);

    // World updates first, then the algorithm reacts.
    switch (ev.type) {
      case trace::TraceEventType::kJoin: {
        const NodeId id = ov.attach_new(cfg.join_degree, churn_rng);
        ASAP_CHECK(id == ev.node);
        liveness.set_online(ev.node, true, t);
        ASAP_OBS_HOOK(opts.observer, trace_churn(t, ev.node, "join"));
        break;
      }
      case trace::TraceEventType::kLeave:
        ov.detach(ev.node);
        liveness.set_online(ev.node, false, t);
        ASAP_OBS_HOOK(opts.observer, trace_churn(t, ev.node, "leave"));
        break;
      case trace::TraceEventType::kRejoin:
        ov.reattach(ev.node, cfg.join_degree, churn_rng);
        liveness.set_online(ev.node, true, t);
        ASAP_OBS_HOOK(opts.observer, trace_churn(t, ev.node, "rejoin"));
        break;
      default:
        break;
    }
    live.apply(ev, world.model);
    index.apply(ev, world.model);

    trace::TraceEvent shifted = ev;
    shifted.time = t;
    algo->on_trace_event(shifted);
  }
  engine.run_until(horizon);
  profiler.begin("reduce", engine.executed());

  // --- reduce -----------------------------------------------------------
  RunResult res;
  res.algo = algo_name(kind);
  res.search = algo->stats();
  res.measure_start = warmup;
  res.measure_end = warmup + world.trace.horizon;
  res.engine_events = engine.executed();
  res.digest = sim::combine_digests(engine.digest(), ledger.digest());
  if (auditor != nullptr) {
    auditor->finalize(ledger);
    res.audited = true;
    res.audit_violations = auditor->summary().violations;
    res.audit_messages = auditor->violations();
  }

  const auto live_series = liveness.live_count_series(horizon);
  const auto cats = load_categories(kind);
  res.load = metrics::reduce_load(
      ledger, cats, live_series,
      static_cast<std::uint32_t>(res.measure_start),
      static_cast<std::uint32_t>(std::ceil(res.measure_end)));
  res.breakdown = metrics::category_breakdown(
      ledger, cats, static_cast<std::uint32_t>(res.measure_start),
      static_cast<std::uint32_t>(std::ceil(res.measure_end)));
  if (is_asap(kind)) {
    res.asap_counters =
        static_cast<ads::AsapProtocol*>(algo.get())->counters();
    res.asap = true;
    for (const auto& share : res.breakdown) {
      switch (share.category) {
        case sim::Traffic::kFullAd:
        case sim::Traffic::kPatchAd:
        case sim::Traffic::kRefreshAd:
          res.ad_bytes_total += share.bytes;
          break;
        case sim::Traffic::kPackedAd:
          res.ad_bytes_total += share.bytes;
          res.ad_bytes_packed += share.bytes;
          break;
        default:
          break;
      }
    }
  }
  if (injector != nullptr) {
    const auto& rep = injector->report();
    res.faults.enabled = true;
    res.faults.crashes = rep.crashes;
    res.faults.partitions = rep.partitions;
    res.faults.bursts = rep.bursts;
    res.faults.link_drops = rep.link_drops;
    res.faults.burst_drops = rep.burst_drops;
    res.faults.partition_drops = rep.partition_drops;
    res.faults.dead_sends = rep.dead_sends;
    res.faults.first_fault_time = plan->first_fault_time();
    res.faults.queries_after_onset = res.search.total_after_onset();
    res.faults.successes_after_onset = res.search.successes_after_onset();
    res.faults.success_rate_after_onset =
        res.search.success_rate_after_onset();
    res.faults.adversarial =
        fault_cfg.adversarial() || fault_cfg.trust_enabled ||
        fault_cfg.trust_fill_gate > 0 || fault_cfg.pending_query_cap > 0 ||
        fault_cfg.ttl_clamp_depth > 0;
    if (res.faults.adversarial) {
      res.faults.polluters = plan->polluters().size();
      res.faults.stale_advertisers = plan->stale_advertisers().size();
      res.faults.confirm_droppers = plan->confirm_droppers().size();
      res.faults.storms = plan->storms().size();
      res.faults.storm_queries = rep.storm_queries;
      const auto& ac = res.asap_counters;  // zero-initialized for baselines
      res.faults.polluted_ads = ac.polluted_ads;
      res.faults.forced_negatives = ac.forced_negatives;
      res.faults.dropped_confirms = ac.dropped_confirms;
      res.faults.trust_strikes = ac.trust_strikes;
      res.faults.quarantines = ac.quarantines;
      res.faults.readmissions = ac.readmissions;
      res.faults.queries_shed = ac.queries_shed;
      res.faults.ttl_clamped = ac.ttl_clamped;
      res.faults.peak_pending_depth = ac.peak_pending_depth;
    }
  }
  if (opts.observer != nullptr) opts.observer->finalize(horizon);
  profiler.end(engine.executed());
  res.profile = profiler.phases();
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  res.events_per_sec = res.wall_seconds > 0.0
                           ? static_cast<double>(res.engine_events) /
                                 res.wall_seconds
                           : 0.0;
  res.state_bytes = algo->state_bytes();
  res.peak_rss_bytes = peak_rss_bytes();
  return res;
}

}  // namespace asap::harness
