#include "harness/matrix_runner.hpp"

#include <chrono>
#include <iostream>
#include <memory>
#include <mutex>
#include <ostream>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "exec/policy.hpp"
#include "sim/audit.hpp"

namespace asap::harness {

std::vector<std::pair<std::string, double>> headline_metrics(
    const RunResult& r) {
  const auto& s = r.search;
  // response_percentile is defined (0.0) for runs with zero successes.
  const double p50 = s.response_percentile(0.50);
  const double p95 = s.response_percentile(0.95);
  std::vector<std::pair<std::string, double>> out{
      {"success_rate", s.success_rate()},
      {"avg_response_s", s.avg_response_time()},
      {"p50_response_s", p50},
      {"p95_response_s", p95},
      {"avg_cost_bytes", s.avg_cost_bytes()},
      {"avg_results", s.avg_results()},
      {"local_hit_rate", s.local_hit_rate()},
      {"load_mean_Bps", r.load.mean_bytes_per_node_per_sec},
      {"load_stddev_Bps", r.load.stddev_bytes_per_node_per_sec},
      {"load_peak_Bps", r.load.peak_bytes_per_node_per_sec},
  };
  if (r.faults.enabled) {
    // Fault metrics are only appended for fault-armed runs: the golden
    // gate requires every reported metric to exist in the baseline, so
    // faults-off results must keep exactly the legacy set.
    const auto& c = r.asap_counters;
    const double stale_hit_rate =
        c.confirm_requests > 0
            ? static_cast<double>(c.confirm_timeouts) /
                  static_cast<double>(c.confirm_requests)
            : 0.0;
    const double time_to_repair =
        c.repair_refetches > 0
            ? c.repair_seconds_sum / static_cast<double>(c.repair_refetches)
            : 0.0;
    out.emplace_back("success_rate_under_churn",
                     r.faults.success_rate_after_onset);
    out.emplace_back("queries_under_churn",
                     static_cast<double>(r.faults.queries_after_onset));
    out.emplace_back("stale_hit_rate", stale_hit_rate);
    out.emplace_back("stale_evictions",
                     static_cast<double>(c.stale_evictions));
    out.emplace_back("confirm_retries",
                     static_cast<double>(c.confirm_retries));
    out.emplace_back("retry_overhead_bytes",
                     static_cast<double>(c.retry_bytes));
    out.emplace_back("time_to_repair_s", time_to_repair);
    out.emplace_back("dead_sends", static_cast<double>(r.faults.dead_sends));
    out.emplace_back("fault_drops",
                     static_cast<double>(r.faults.link_drops +
                                         r.faults.burst_drops +
                                         r.faults.partition_drops));
    if (r.asap) {
      // Total advertisement traffic over the measurement window — the
      // ad-traffic-vs-success trade-off axis for the adaptive-scheduling
      // sweeps. Appended for every fault-armed ASAP run so vanilla and
      // adaptive variants are directly comparable in one artifact.
      out.emplace_back("ad_bytes_total",
                       static_cast<double>(r.ad_bytes_total));
    }
    if (r.faults.adversarial) {
      // Adversary/defense metrics: gated on the adversarial flag (not on
      // `enabled`) so churn-only fault artifacts keep their metric set.
      out.emplace_back("polluted_ads",
                       static_cast<double>(r.faults.polluted_ads));
      out.emplace_back("forced_negatives",
                       static_cast<double>(r.faults.forced_negatives));
      out.emplace_back("dropped_confirms",
                       static_cast<double>(r.faults.dropped_confirms));
      out.emplace_back("storm_queries",
                       static_cast<double>(r.faults.storm_queries));
      out.emplace_back("trust_strikes",
                       static_cast<double>(r.faults.trust_strikes));
      out.emplace_back("quarantines",
                       static_cast<double>(r.faults.quarantines));
      out.emplace_back("readmissions",
                       static_cast<double>(r.faults.readmissions));
      out.emplace_back("queries_shed",
                       static_cast<double>(r.faults.queries_shed));
      out.emplace_back("ttl_clamped",
                       static_cast<double>(r.faults.ttl_clamped));
      out.emplace_back("peak_pending_depth",
                       static_cast<double>(r.faults.peak_pending_depth));
    }
  }
  if (r.asap_counters.ad_rounds > 0) {
    // Adaptive-scheduler telemetry; only adaptive/delta runs execute ad
    // rounds, so legacy artifacts keep exactly the legacy metric set.
    out.emplace_back("ad_bytes_packed",
                     static_cast<double>(r.ad_bytes_packed));
    out.emplace_back("ad_rounds",
                     static_cast<double>(r.asap_counters.ad_rounds));
  }
  return out;
}

MatrixResult run_matrix(const MatrixSpec& spec) {
  ASAP_REQUIRE(!spec.topologies.empty(), "matrix: no topologies");
  ASAP_REQUIRE(!spec.algos.empty(), "matrix: no algorithms");
  ASAP_REQUIRE(!spec.fault_scenarios.empty(), "matrix: no fault scenarios");
  ASAP_REQUIRE(spec.trials >= 1, "matrix: trials must be >= 1");
  ASAP_REQUIRE(spec.options.seed_salt == 0,
               "matrix: seed_salt is derived per trial; set MatrixSpec::seed");
  ASAP_REQUIRE(spec.options.observer == nullptr ||
                   (spec.topologies.size() == 1 && spec.algos.size() == 1 &&
                    spec.fault_scenarios.size() == 1 && spec.trials == 1),
               "matrix: a trace observer serves exactly one run; restrict "
               "the matrix to a single (topology, scenario, algo, trial) "
               "cell");
  for (const auto& scen : spec.fault_scenarios) scen.config.validate();

  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t num_topos = spec.topologies.size();
  const std::size_t num_scens = spec.fault_scenarios.size();
  const std::size_t num_algos = spec.algos.size();
  const std::size_t trials = spec.trials;
  const std::size_t num_worlds = num_topos * trials;
  const std::size_t num_cells = num_worlds * num_scens * num_algos;

  std::mutex io_mu;
  const auto progress = [&](const std::string& line) {
    if (!spec.verbose) return;
    std::lock_guard lock(io_mu);
    std::cerr << line << '\n';
  };

  // One immutable World per (topology, trial); cells of that trial share
  // it read-only (run_experiment copies the overlay it mutates).
  const auto world_seed_of = [&](std::size_t trial) {
    return spec.seed ^ trial_seed_salt(static_cast<std::uint32_t>(trial));
  };
  const auto config_of = [&](TopologyKind topo, std::size_t trial) {
    auto cfg = ExperimentConfig::make(spec.preset, topo, world_seed_of(trial));
    if (spec.queries != 0) cfg.trace.num_queries = spec.queries;
    if (spec.scale != 0) cfg.apply_scale(spec.scale);
    if (spec.stream_trace) cfg.stream_trace = true;
    if (spec.tweak) spec.tweak(cfg);
    return cfg;
  };

  // jobs = 0 auto-detects through the shared clamp: hardware_concurrency()
  // may legitimately report 0, and the fan-out must degrade to one lane,
  // never to a zero-worker pool.
  const std::size_t jobs =
      spec.jobs == 0 ? exec::hardware_lanes() : spec.jobs;
  ThreadPool pool(jobs);
  exec::PoolPolicy policy(pool);
  std::vector<std::unique_ptr<const World>> worlds(num_worlds);
  std::vector<obs::PhaseProfile> world_profiles(num_worlds);
  policy.run(num_worlds, [&](std::size_t w) {
    const TopologyKind topo = spec.topologies[w / trials];
    const std::size_t trial = w % trials;
    obs::PhaseProfiler prof;
    prof.begin("world-build");
    worlds[w] = std::make_unique<const World>(
        build_world(config_of(topo, trial)));
    prof.end();
    world_profiles[w] = prof.phases().front();
    progress("[matrix] built " + std::string(topology_name(topo)) +
             " world, trial " + std::to_string(trial));
  });

  // Slot layout fixes the canonical order (topology, scenario, algorithm,
  // trial) regardless of which worker finishes when.
  MatrixResult out;
  out.spec = spec;
  out.trials.resize(num_cells);
  policy.run(num_cells, [&](std::size_t c) {
    const std::size_t topo_idx = c / (num_scens * num_algos * trials);
    const std::size_t scen_idx = (c / (num_algos * trials)) % num_scens;
    const std::size_t algo_idx = (c / trials) % num_algos;
    const std::size_t trial = c % trials;
    const AlgoKind algo = spec.algos[algo_idx];
    const faults::FaultScenario& scen = spec.fault_scenarios[scen_idx];

    TrialRun& slot = out.trials[c];
    slot.topology = spec.topologies[topo_idx];
    slot.algo = algo;
    slot.scenario = scen.name;
    slot.trial = static_cast<std::uint32_t>(trial);
    slot.world_seed = world_seed_of(trial);
    RunOptions opts =
        spec.options_for ? spec.options_for(algo) : spec.options;
    // An all-zero scenario ("none") leaves opts.faults unset so the run
    // arms no injector and stays bit-identical to a legacy matrix cell.
    if (scen.config.any()) {
      faults::FaultConfig fc = scen.config;
      if (spec.trust.has_value()) {
        if (*spec.trust) {
          fc.trust_enabled = true;
          fc.strike_per_chain = true;
          if (fc.trust_fill_gate <= 0.0) fc.trust_fill_gate = 0.65;
        } else {
          fc.trust_enabled = false;
          fc.strike_per_chain = false;
          fc.trust_fill_gate = 0.0;
          fc.pending_query_cap = 0;
          fc.ttl_clamp_depth = 0;
        }
      }
      opts.faults = fc;
    }
    slot.result =
        run_experiment(*worlds[topo_idx * trials + trial], algo, opts);
    // Each cell's profile leads with the (shared) world-build phase so a
    // single trial_runs entry tells the whole wall-clock story.
    slot.result.profile.insert(slot.result.profile.begin(),
                               world_profiles[topo_idx * trials + trial]);
    progress("[matrix] " + std::string(topology_name(slot.topology)) + " / " +
             scen.name + " / " + slot.result.algo + " trial " +
             std::to_string(trial) + " done, digest " +
             json::hex_u64(slot.result.digest));
  });

  // --- aggregate --------------------------------------------------------
  sim::Fnv64 matrix_digest;
  for (std::size_t t = 0; t < num_topos; ++t) {
    for (std::size_t s = 0; s < num_scens; ++s) {
      for (std::size_t a = 0; a < num_algos; ++a) {
        CellAggregate cell;
        cell.topology = spec.topologies[t];
        cell.algo = spec.algos[a];
        cell.scenario = spec.fault_scenarios[s].name;
        cell.trials = spec.trials;
        metrics::TrialAggregator agg;
        for (std::size_t k = 0; k < trials; ++k) {
          const TrialRun& run =
              out.trials[((t * num_scens + s) * num_algos + a) * trials + k];
          cell.digests.push_back(run.result.digest);
          matrix_digest.absorb(run.result.digest);
          for (const auto& [name, value] : headline_metrics(run.result)) {
            agg.add(name, value);
          }
        }
        cell.metrics = agg.summaries();
        out.cells.push_back(std::move(cell));
      }
    }
  }
  out.matrix_digest = matrix_digest.value();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return out;
}

// --- results.json ---------------------------------------------------------

namespace {

json::Value summary_to_json(const metrics::MetricSummary& s) {
  json::Object o;
  o.emplace_back("mean", s.mean);
  o.emplace_back("stddev", s.stddev);
  o.emplace_back("min", s.min);
  o.emplace_back("max", s.max);
  return json::Value(std::move(o));
}

}  // namespace

json::Value results_to_json(const MatrixResult& result) {
  const MatrixSpec& spec = result.spec;

  json::Object spec_obj;
  spec_obj.emplace_back("preset", preset_name(spec.preset));
  json::Array topos;
  for (const auto t : spec.topologies) topos.emplace_back(topology_name(t));
  spec_obj.emplace_back("topologies", std::move(topos));
  json::Array algos;
  for (const auto a : spec.algos) algos.emplace_back(algo_name(a));
  spec_obj.emplace_back("algos", std::move(algos));
  json::Array scens;
  for (const auto& s : spec.fault_scenarios) {
    scens.emplace_back(faults::scenario_to_json(s));
  }
  spec_obj.emplace_back("fault_scenarios", std::move(scens));
  spec_obj.emplace_back("seed", json::hex_u64(spec.seed));
  spec_obj.emplace_back("trials", static_cast<double>(spec.trials));
  spec_obj.emplace_back("queries", static_cast<double>(spec.queries));
  spec_obj.emplace_back("message_loss", spec.options.message_loss);
  spec_obj.emplace_back("audit", spec.options.audit);
  spec_obj.emplace_back(
      "shards", static_cast<double>(spec.options.engine_tuning.shards));
  spec_obj.emplace_back("scale", static_cast<double>(spec.scale));
  spec_obj.emplace_back("stream_trace", spec.stream_trace);
  // Only recorded when the CLI override was given: absent = legacy file =
  // scenarios run with their own defense knobs.
  if (spec.trust.has_value()) {
    spec_obj.emplace_back("trust", *spec.trust ? "on" : "off");
  }

  json::Array cells;
  for (const auto& cell : result.cells) {
    json::Object c;
    c.emplace_back("topology", topology_name(cell.topology));
    c.emplace_back("faults", cell.scenario);
    c.emplace_back("algo", algo_name(cell.algo));
    c.emplace_back("trials", static_cast<double>(cell.trials));
    json::Array digests;
    for (const auto d : cell.digests) digests.emplace_back(json::hex_u64(d));
    c.emplace_back("digests", std::move(digests));
    json::Object ms;
    for (const auto& [name, summary] : cell.metrics) {
      ms.emplace_back(name, summary_to_json(summary));
    }
    c.emplace_back("metrics", std::move(ms));
    cells.emplace_back(std::move(c));
  }

  json::Array trial_runs;
  for (const auto& run : result.trials) {
    json::Object r;
    r.emplace_back("topology", topology_name(run.topology));
    r.emplace_back("faults", run.scenario);
    r.emplace_back("algo", algo_name(run.algo));
    r.emplace_back("trial", static_cast<double>(run.trial));
    r.emplace_back("world_seed", json::hex_u64(run.world_seed));
    r.emplace_back("digest", json::hex_u64(run.result.digest));
    r.emplace_back("engine_events",
                   static_cast<double>(run.result.engine_events));
    json::Object ms;
    for (const auto& [name, value] : headline_metrics(run.result)) {
      ms.emplace_back(name, value);
    }
    r.emplace_back("metrics", std::move(ms));
    if (run.result.faults.enabled) {
      const auto& f = run.result.faults;
      json::Object fs;
      fs.emplace_back("crashes", static_cast<double>(f.crashes));
      fs.emplace_back("partitions", static_cast<double>(f.partitions));
      fs.emplace_back("bursts", static_cast<double>(f.bursts));
      fs.emplace_back("link_drops", static_cast<double>(f.link_drops));
      fs.emplace_back("burst_drops", static_cast<double>(f.burst_drops));
      fs.emplace_back("partition_drops",
                      static_cast<double>(f.partition_drops));
      fs.emplace_back("dead_sends", static_cast<double>(f.dead_sends));
      fs.emplace_back("first_fault_time", f.first_fault_time);
      fs.emplace_back("queries_after_onset",
                      static_cast<double>(f.queries_after_onset));
      fs.emplace_back("successes_after_onset",
                      static_cast<double>(f.successes_after_onset));
      if (f.adversarial) {
        fs.emplace_back("adversarial", true);
        fs.emplace_back("polluters", static_cast<double>(f.polluters));
        fs.emplace_back("stale_advertisers",
                        static_cast<double>(f.stale_advertisers));
        fs.emplace_back("confirm_droppers",
                        static_cast<double>(f.confirm_droppers));
        fs.emplace_back("storms", static_cast<double>(f.storms));
        fs.emplace_back("storm_queries",
                        static_cast<double>(f.storm_queries));
        fs.emplace_back("polluted_ads",
                        static_cast<double>(f.polluted_ads));
        fs.emplace_back("forced_negatives",
                        static_cast<double>(f.forced_negatives));
        fs.emplace_back("dropped_confirms",
                        static_cast<double>(f.dropped_confirms));
        fs.emplace_back("trust_strikes",
                        static_cast<double>(f.trust_strikes));
        fs.emplace_back("quarantines", static_cast<double>(f.quarantines));
        fs.emplace_back("readmissions",
                        static_cast<double>(f.readmissions));
        fs.emplace_back("queries_shed",
                        static_cast<double>(f.queries_shed));
        fs.emplace_back("ttl_clamped", static_cast<double>(f.ttl_clamped));
        fs.emplace_back("peak_pending_depth",
                        static_cast<double>(f.peak_pending_depth));
      }
      r.emplace_back("fault_summary", std::move(fs));
    }
    // Wall-clock phase breakdown; informational only, like wall_seconds —
    // the golden gate never compares it.
    r.emplace_back("wall_seconds", run.result.wall_seconds);
    // Scale instrumentation (docs/RESULTS_SCHEMA.md): informational like
    // wall_seconds — never compared by the golden gate, and deliberately
    // not headline metrics (the gate pins that set).
    r.emplace_back("events_per_sec", run.result.events_per_sec);
    r.emplace_back("state_bytes",
                   static_cast<double>(run.result.state_bytes));
    r.emplace_back("peak_rss_bytes",
                   static_cast<double>(run.result.peak_rss_bytes));
    json::Array profile;
    for (const auto& p : run.result.profile) {
      profile.emplace_back(obs::phase_profile_to_json(p));
    }
    r.emplace_back("profile", std::move(profile));
    trial_runs.emplace_back(std::move(r));
  }

  json::Object doc;
  doc.emplace_back("schema", "asap-matrix-results/1");
  doc.emplace_back("spec", std::move(spec_obj));
  doc.emplace_back("matrix_digest", json::hex_u64(result.matrix_digest));
  // Informational only — never part of a golden comparison.
  doc.emplace_back("wall_seconds", result.wall_seconds);
  doc.emplace_back("cells", std::move(cells));
  doc.emplace_back("trial_runs", std::move(trial_runs));
  return json::Value(std::move(doc));
}

void write_results_json(const MatrixResult& result, std::ostream& os) {
  os << json::dump(results_to_json(result));
}

MatrixSpec spec_from_json(const json::Value& doc) {
  const json::Value& spec = doc.at("spec");
  MatrixSpec out;

  const auto preset = preset_from_name(spec.at("preset").as_string());
  ASAP_REQUIRE(preset.has_value(), "results spec: unknown preset");
  out.preset = *preset;

  out.topologies.clear();
  for (const auto& t : spec.at("topologies").as_array()) {
    const auto topo = topology_from_name(t.as_string());
    ASAP_REQUIRE(topo.has_value(), "results spec: unknown topology");
    out.topologies.push_back(*topo);
  }
  out.algos.clear();
  for (const auto& a : spec.at("algos").as_array()) {
    const auto algo = algo_from_name(a.as_string());
    ASAP_REQUIRE(algo.has_value(), "results spec: unknown algorithm");
    out.algos.push_back(*algo);
  }
  // Older results files predate the fault axis; absent means the default
  // single "none" scenario, so committed goldens keep round-tripping.
  if (const json::Value* scens = spec.find("fault_scenarios")) {
    out.fault_scenarios.clear();
    for (const auto& s : scens->as_array()) {
      out.fault_scenarios.push_back(faults::scenario_from_json(s));
    }
    ASAP_REQUIRE(!out.fault_scenarios.empty(),
                 "results spec: empty fault_scenarios");
  }
  out.seed = spec.at("seed").u64_hex();
  out.trials = static_cast<std::uint32_t>(spec.at("trials").as_double());
  out.queries = static_cast<std::uint32_t>(spec.at("queries").as_double());
  out.options.message_loss = spec.at("message_loss").as_double();
  out.options.audit = spec.at("audit").as_bool();
  // Older results files predate the shard axis; absent means the classic
  // single-queue engine, which is also what shards = 1 runs — so committed
  // goldens keep round-tripping bit-identically.
  if (const json::Value* shards = spec.find("shards")) {
    out.options.engine_tuning.shards =
        static_cast<std::size_t>(shards->as_double());
  }
  // Older results files predate the scale axis; absent means the preset's
  // own dimensions (scale = 0) with a materialized trace, exactly what
  // every pre-scale artifact ran with.
  if (const json::Value* scale = spec.find("scale")) {
    out.scale = static_cast<std::uint32_t>(scale->as_double());
  }
  if (const json::Value* stream = spec.find("stream_trace")) {
    out.stream_trace = stream->as_bool();
  }
  // Absent = legacy file = no defense override (tri-state stays unset).
  if (const json::Value* trust = spec.find("trust")) {
    const std::string& v = trust->as_string();
    ASAP_REQUIRE(v == "on" || v == "off",
                 "results spec: trust must be \"on\" or \"off\"");
    out.trust = (v == "on");
  }
  return out;
}

}  // namespace asap::harness
