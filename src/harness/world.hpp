// World construction: physical network, overlay, content model, trace.
//
// A World is immutable during replay and shared across all systems under
// test, so every algorithm faces the identical workload: the same peers,
// the same content placement, the same queries at the same times, the same
// churn. Per-run mutable state (overlay churn, live content, liveness,
// ledgers) is created by the replayer from the World.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "harness/config.hpp"
#include "net/transit_stub.hpp"
#include "overlay/overlay.hpp"
#include "trace/content_model.hpp"
#include "trace/trace.hpp"

namespace asap::harness {

/// Everything a run needs to re-synthesize the trace event stream on
/// demand (cfg.stream_trace): the trace-stream RNG's initial state, the
/// corpus position where mid-trace mints begin, and the churn bitmap the
/// fault planner would otherwise reduce from the events vector. With this,
/// World::trace keeps only the counters and horizon — events stays empty.
struct StreamingTraceInfo {
  bool enabled = false;
  Rng rng{0};
  DocId mint_base = 0;
  /// churned[n] != 0 iff the trace joins/leaves/rejoins initial node n.
  std::vector<std::uint8_t> churned;
};

struct World {
  ExperimentConfig cfg;
  net::TransitStubNetwork phys;
  overlay::Overlay base_overlay;          // initial nodes only
  std::vector<PhysNodeId> node_phys;      // one entry per node slot
  trace::ContentModel model;              // includes mid-trace documents
  trace::Trace trace;
  StreamingTraceInfo streaming;
};

/// Builds the full world deterministically from cfg.seed.
World build_world(const ExperimentConfig& cfg);

}  // namespace asap::harness
