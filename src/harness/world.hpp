// World construction: physical network, overlay, content model, trace.
//
// A World is immutable during replay and shared across all systems under
// test, so every algorithm faces the identical workload: the same peers,
// the same content placement, the same queries at the same times, the same
// churn. Per-run mutable state (overlay churn, live content, liveness,
// ledgers) is created by the replayer from the World.
#pragma once

#include <vector>

#include "harness/config.hpp"
#include "net/transit_stub.hpp"
#include "overlay/overlay.hpp"
#include "trace/content_model.hpp"
#include "trace/trace.hpp"

namespace asap::harness {

struct World {
  ExperimentConfig cfg;
  net::TransitStubNetwork phys;
  overlay::Overlay base_overlay;          // initial nodes only
  std::vector<PhysNodeId> node_phys;      // one entry per node slot
  trace::ContentModel model;              // includes mid-trace documents
  trace::Trace trace;
};

/// Builds the full world deterministically from cfg.seed.
World build_world(const ExperimentConfig& cfg);

}  // namespace asap::harness
