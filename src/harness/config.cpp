#include "harness/config.hpp"

namespace asap::harness {

const char* topology_name(TopologyKind t) {
  switch (t) {
    case TopologyKind::kRandom:
      return "random";
    case TopologyKind::kPowerlaw:
      return "powerlaw";
    case TopologyKind::kCrawled:
      return "crawled";
  }
  return "?";
}

std::optional<TopologyKind> topology_from_name(std::string_view name) {
  for (const auto t : {TopologyKind::kRandom, TopologyKind::kPowerlaw,
                       TopologyKind::kCrawled}) {
    if (name == topology_name(t)) return t;
  }
  return std::nullopt;
}

const char* preset_name(Preset p) {
  return p == Preset::kPaper ? "paper" : "small";
}

std::optional<Preset> preset_from_name(std::string_view name) {
  if (name == "small") return Preset::kSmall;
  if (name == "paper") return Preset::kPaper;
  return std::nullopt;
}

ExperimentConfig ExperimentConfig::make(Preset preset, TopologyKind topology,
                                        std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.preset = preset;
  cfg.topology = topology;
  cfg.seed = seed;
  if (preset == Preset::kPaper) {
    cfg.phys = net::TransitStubParams::paper();
    cfg.content = trace::ContentModelParams::paper();
    cfg.trace = trace::TraceParams::paper();
    cfg.warmup = 480.0;
  } else {
    cfg.phys = net::TransitStubParams::small();
    cfg.content = trace::ContentModelParams::small();
    cfg.trace = trace::TraceParams::small();
    // Warm-up must outlast the longest ad walk (budget/walkers hops at
    // ~0.12 s per hop; GSA walks run budget/degree hops) so warm-up
    // traffic does not bleed into the measurement window.
    cfg.warmup = 480.0;
  }
  return cfg;
}

}  // namespace asap::harness
