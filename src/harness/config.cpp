#include "harness/config.hpp"

#include <algorithm>

namespace asap::harness {

const char* topology_name(TopologyKind t) {
  switch (t) {
    case TopologyKind::kRandom:
      return "random";
    case TopologyKind::kPowerlaw:
      return "powerlaw";
    case TopologyKind::kCrawled:
      return "crawled";
  }
  return "?";
}

std::optional<TopologyKind> topology_from_name(std::string_view name) {
  for (const auto t : {TopologyKind::kRandom, TopologyKind::kPowerlaw,
                       TopologyKind::kCrawled}) {
    if (name == topology_name(t)) return t;
  }
  return std::nullopt;
}

const char* preset_name(Preset p) {
  return p == Preset::kPaper ? "paper" : "small";
}

std::optional<Preset> preset_from_name(std::string_view name) {
  if (name == "small") return Preset::kSmall;
  if (name == "paper") return Preset::kPaper;
  return std::nullopt;
}

void ExperimentConfig::apply_scale(std::uint32_t n) {
  if (n == 0) return;  // keep the preset dimensions
  scale = n;

  content.initial_nodes = n;
  content.joiner_nodes = std::max<std::uint32_t>(100, n / 10);

  // Churn stays a bounded absolute count: attach/reattach keep the legacy
  // O(n) candidate scan per event (digest compatibility), so churn volume
  // — not population — must bound that cost at scale.
  trace.joins = std::min<std::uint32_t>(trace.joins, 2'000);
  trace.joins = std::min(trace.joins, content.joiner_nodes);
  trace.leaves = std::min<std::uint32_t>(trace.leaves, 2'000);

  // Keep popular-term selectivity roughly scale-invariant: a fixed 800-term
  // pool shared by a million peers would make every popular term a huge
  // result set. Past the ZipfDraw CDF threshold this also engages the O(1)
  // rejection-inversion sampler.
  content.popular_terms_per_class =
      std::max(content.popular_terms_per_class, n / 50);

  // Physical network: enough stub capacity for every slot (initial nodes
  // plus joiners) while transit dimensions stay fixed.
  const std::uint32_t slots = content.initial_nodes + content.joiner_nodes;
  phys.stub_nodes_per_domain = 20;
  const std::uint32_t transits = phys.total_transit_nodes();
  const std::uint32_t per_domain = phys.stub_nodes_per_domain;
  phys.stub_domains_per_transit =
      (slots + transits * per_domain - 1) / (transits * per_domain);

  // Large worlds never materialize the trace.
  if (n >= 100'000) stream_trace = true;
}

ExperimentConfig ExperimentConfig::make(Preset preset, TopologyKind topology,
                                        std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.preset = preset;
  cfg.topology = topology;
  cfg.seed = seed;
  if (preset == Preset::kPaper) {
    cfg.phys = net::TransitStubParams::paper();
    cfg.content = trace::ContentModelParams::paper();
    cfg.trace = trace::TraceParams::paper();
    cfg.warmup = 480.0;
  } else {
    cfg.phys = net::TransitStubParams::small();
    cfg.content = trace::ContentModelParams::small();
    cfg.trace = trace::TraceParams::small();
    // Warm-up must outlast the longest ad walk (budget/walkers hops at
    // ~0.12 s per hop; GSA walks run budget/degree hops) so warm-up
    // traffic does not bleed into the measurement window.
    cfg.warmup = 480.0;
  }
  return cfg;
}

}  // namespace asap::harness
