// Parallel experiment-matrix runner.
//
// Fans an (algorithm × topology × trial) matrix out across a ThreadPool.
// Every figure in the paper (§IV–V) is such a sweep; replaying it
// sequentially gates paper-scale reproduction on one core, while each cell
// is already a deterministic, single-threaded simulation — embarrassingly
// parallel by construction.
//
// Determinism contract: results are bit-identical for jobs=1 and jobs=N.
// Three properties make that hold and are locked down by tests:
//   * each trial owns its mutable state — run_experiment() builds a private
//     Engine, BandwidthLedger, Liveness and overlay copy per call, and
//     Worlds are immutable once built (cells of one trial share a const
//     World only);
//   * trial seeds derive from the master seed alone
//     (seed ^ trial_seed_salt(k), replay.hpp), never from schedule order;
//   * results land in pre-sized slots indexed by matrix position, so
//     completion order cannot reorder anything.
//
// The aggregate (mean ± stddev over trials, per headline metric) plus the
// per-trial digests serialize to results.json (schema:
// docs/RESULTS_SCHEMA.md); tests/support/golden_small.json is such a file,
// diffed by the golden-metrics regression gate.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"
#include "metrics/aggregate.hpp"

namespace asap::harness {

struct MatrixSpec {
  Preset preset = Preset::kSmall;
  std::vector<TopologyKind> topologies{TopologyKind::kCrawled};
  std::vector<AlgoKind> algos{std::begin(kAllAlgos), std::end(kAllAlgos)};
  /// Fault-scenario axis (faults/fault_config.hpp). The default single
  /// "none" scenario arms no injector, so legacy matrices (and their
  /// goldens) are exactly the one-scenario special case.
  std::vector<faults::FaultScenario> fault_scenarios{faults::FaultScenario{}};
  /// Master seed; trial k of every cell runs with seed ^ trial_seed_salt(k).
  std::uint64_t seed = 42;
  /// Independently-seeded repetitions per (algorithm × topology) cell.
  std::uint32_t trials = 1;
  /// Worker threads (0 = hardware lanes, clamped >= 1 via
  /// exec::hardware_lanes()). Never affects results. Engine shard counts
  /// ride RunOptions::engine_tuning.shards in `options`/`options_for`
  /// and never affect results either (DESIGN.md §14).
  std::size_t jobs = 0;
  /// Override the preset's query count (0 = preset default).
  std::uint32_t queries = 0;
  /// Node-count override (0 = preset default). Non-zero re-dimensions
  /// every world via ExperimentConfig::apply_scale — the --scale axis.
  std::uint32_t scale = 0;
  /// Force on-demand trace synthesis even below the apply_scale threshold
  /// (streaming-vs-materialized digest-identity checks).
  bool stream_trace = false;
  /// Tri-state defense override (the --trust on|off CLI axis). Unset leaves
  /// every scenario's own defense knobs alone (legacy behaviour, and what
  /// absent results.json keys round-trip to). `on` forces trust scoring
  /// (plus the per-chain strike guard) across all fault-armed scenarios;
  /// `off` strips trust *and* overload protection, the defense-off control
  /// arm of the adversarial golden.
  std::optional<bool> trust;
  /// Options applied to every cell (audit, message_loss, seed_salt is
  /// reserved for the runner and must stay 0).
  RunOptions options;
  /// Per-algorithm options override; when set it wins over `options`.
  /// Used by the CLI to apply protocol-knob overrides per ASAP scheme.
  std::function<RunOptions(AlgoKind)> options_for;
  /// Arbitrary config post-processing (tests shrink worlds with this).
  /// Runs after the preset/queries are applied; not serializable, so specs
  /// carrying a tweak cannot be round-tripped through results.json.
  std::function<void(ExperimentConfig&)> tweak;
  /// Progress lines on stderr.
  bool verbose = false;
};

/// One completed trial. `world_seed` is the derived seed the trial's World
/// was built from.
struct TrialRun {
  TopologyKind topology{};
  AlgoKind algo{};
  std::string scenario;  ///< fault-scenario name ("none" when faults off)
  std::uint32_t trial = 0;
  std::uint64_t world_seed = 0;
  RunResult result;
};

/// One (topology × scenario × algorithm) cell aggregated over its trials.
struct CellAggregate {
  TopologyKind topology{};
  AlgoKind algo{};
  std::string scenario;
  std::uint32_t trials = 0;
  /// Per-trial run digests in trial order — the regression fingerprint.
  std::vector<std::uint64_t> digests;
  /// Headline metrics (headline_metrics() order), mean ± stddev over trials.
  std::vector<std::pair<std::string, metrics::MetricSummary>> metrics;
};

struct MatrixResult {
  MatrixSpec spec;
  /// Canonical order: topology-major, then scenario, then algorithm, then
  /// trial.
  std::vector<TrialRun> trials;
  std::vector<CellAggregate> cells;
  /// FNV-1a over every trial digest in canonical order: one number that
  /// pins the whole matrix down.
  std::uint64_t matrix_digest = 0;
  double wall_seconds = 0.0;
};

/// The scalar metrics a run is summarized by, in canonical report order.
/// Runs with the fault layer armed report additional fault metrics
/// (success_rate_under_churn, stale_evictions, …); faults-off runs keep
/// the legacy metric set exactly, so committed goldens stay comparable.
std::vector<std::pair<std::string, double>> headline_metrics(
    const RunResult& r);

/// Runs the full matrix. Total work is
/// |topologies| × |scenarios| × |algos| × trials cells plus
/// |topologies| × trials world builds, all scheduled on one pool.
MatrixResult run_matrix(const MatrixSpec& spec);

/// results.json document (schema docs/RESULTS_SCHEMA.md).
json::Value results_to_json(const MatrixResult& result);
void write_results_json(const MatrixResult& result, std::ostream& os);

/// Rebuilds the spec recorded in a results.json document (inverse of
/// results_to_json for the spec subset; jobs/verbose/tweak are not
/// recorded). Throws ConfigError on malformed or unknown-name input.
MatrixSpec spec_from_json(const json::Value& doc);

}  // namespace asap::harness
