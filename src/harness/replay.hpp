// Trace replay: runs one system under test against a World and reduces
// the paper's metrics.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asap/asap_protocol.hpp"
#include "faults/fault_config.hpp"
#include "harness/world.hpp"
#include "metrics/load_series.hpp"
#include "metrics/search_stats.hpp"
#include "obs/observer.hpp"
#include "obs/profiler.hpp"
#include "search/baseline.hpp"
#include "sim/audit.hpp"
#include "sim/bandwidth.hpp"
#include "sim/engine.hpp"

namespace asap::harness {

/// The six systems evaluated in the paper (§IV-A), plus the adaptive
/// advertisement-scheduling extensions (RW scheme, ads::AdMode).
enum class AlgoKind : std::uint8_t {
  kFlooding,
  kRandomWalk,
  kGsa,
  kAsapFld,
  kAsapRw,
  kAsapGsa,
  kAsapAdaptive,  ///< ASAP(RW) + byte-budgeted packed ad rounds
  kAsapDelta,     ///< kAsapAdaptive with delta ads against the last full ad
};

/// The paper's six systems — the canonical matrix axis. The adaptive
/// extensions are deliberately *not* here: `--algo all`, the golden
/// matrices and the fault matrix stay pinned to the paper's set.
inline constexpr AlgoKind kAllAlgos[] = {
    AlgoKind::kFlooding, AlgoKind::kRandomWalk, AlgoKind::kGsa,
    AlgoKind::kAsapFld,  AlgoKind::kAsapRw,     AlgoKind::kAsapGsa,
};

/// Every runnable algorithm, including the adaptive extensions (name
/// lookup, explicit CLI selection).
inline constexpr AlgoKind kExtendedAlgos[] = {
    AlgoKind::kFlooding, AlgoKind::kRandomWalk,   AlgoKind::kGsa,
    AlgoKind::kAsapFld,  AlgoKind::kAsapRw,       AlgoKind::kAsapGsa,
    AlgoKind::kAsapAdaptive, AlgoKind::kAsapDelta,
};

const char* algo_name(AlgoKind k);
/// Inverse of algo_name(); nullopt for unknown names.
std::optional<AlgoKind> algo_from_name(std::string_view name);
bool is_asap(AlgoKind k);

/// Canonical seed derivation for "trial k of master seed s" — the single
/// definition shared by the matrix runner and the repeated-trial benches:
///
///   effective seed of trial k  =  s ^ trial_seed_salt(k)
///
/// trial_seed_salt(0) == 0, so trial 0 is exactly the unsalted run (its
/// digest matches a plain run_experiment/asap_sim invocation with seed s);
/// later trials mix splitmix64(k) so neighbouring indices land in
/// uncorrelated streams. Benches that hold one World fixed and re-roll
/// only the algorithm's randomness pass the salt via RunOptions::seed_salt;
/// the matrix runner applies it to ExperimentConfig::seed instead, which
/// re-derives the whole world *and* the algorithm stream from the trial
/// seed.
std::uint64_t trial_seed_salt(std::uint32_t trial);

/// Traffic categories that count toward system load for this algorithm
/// (paper §V-B: baselines count query messages; ASAP counts ad deliveries
/// plus confirmation and ads-request traffic).
std::vector<sim::Traffic> load_categories(AlgoKind k);

struct RunOptions {
  /// Override the preset-derived parameters (ablation benches).
  std::optional<search::BaselineParams> baseline;
  std::optional<ads::AsapParams> asap;
  /// Extra salt mixed into the run RNG. Repeated-trial benches set this to
  /// trial_seed_salt(k) so "trial k" means the same thing everywhere (see
  /// trial_seed_salt above); 0 leaves the canonical stream untouched.
  std::uint64_t seed_salt = 0;
  /// Failure injection: probability any overlay transmission is lost, in
  /// [0, 1]. 1.0 is a valid (total-blackout) setting: senders still pay
  /// for every attempt, so runs terminate and audit clean.
  double message_loss = 0.0;
  /// Deterministic fault injection (faults/fault_config.hpp). When set it
  /// overrides ExperimentConfig::faults and forces the injector on even if
  /// every rate is zero — the determinism guard relies on an armed
  /// zero-rate injector leaving digests bit-identical.
  std::optional<faults::FaultConfig> faults;
  /// Run-time invariant auditing (sim/audit.hpp). Defaults to on when the
  /// build was configured with -DASAP_AUDIT=ON.
  bool audit = sim::kAuditDefaultOn;
  /// Passive observability sink (obs/observer.hpp): trace spans, counter
  /// snapshots. One observer serves one run — run_experiment finalizes it
  /// at the horizon. Guaranteed not to perturb the simulation: the run
  /// digest is bit-identical with and without an observer attached
  /// (enforced by tests/harness/observability_test.cpp, tier 1).
  obs::RunObserver* observer = nullptr;
  /// Event-queue tuning (sim/engine.hpp). Any setting pops events in the
  /// same (time, seq) order, so the run digest is invariant across heap,
  /// ladder, and forced-pool-callback configurations (enforced by
  /// tests/harness/engine_digest_test.cpp, tier 1); non-default values are
  /// for tests and benches only.
  sim::EngineTuning engine_tuning;
};

/// What the fault layer did to one run (all zero when disabled).
struct FaultSummary {
  bool enabled = false;
  std::uint64_t crashes = 0;
  std::uint64_t partitions = 0;
  std::uint64_t bursts = 0;
  std::uint64_t link_drops = 0;
  std::uint64_t burst_drops = 0;
  std::uint64_t partition_drops = 0;
  /// Transmissions paid for to crashed-but-undetected nodes.
  std::uint64_t dead_sends = 0;
  /// First fault instant (+inf when the plan is empty).
  Seconds first_fault_time = 0.0;
  /// Searches issued at or after first_fault_time, and how many succeeded
  /// (the success-rate-under-churn metric).
  std::uint64_t queries_after_onset = 0;
  std::uint64_t successes_after_onset = 0;
  double success_rate_after_onset = 0.0;
  /// True when the fault config armed adversarial roles / storms or any
  /// defense knob — gates the adversary/defense result fields so legacy
  /// (churn-only) fault runs keep their exact metric set.
  bool adversarial = false;
  /// Seeded Byzantine roster sizes (from the plan).
  std::uint64_t polluters = 0;
  std::uint64_t stale_advertisers = 0;
  std::uint64_t confirm_droppers = 0;
  /// Flash-crowd schedule: windows planned and synthetic queries injected.
  std::uint64_t storms = 0;
  std::uint64_t storm_queries = 0;
  /// Adversary impact counters (from the protocol).
  std::uint64_t polluted_ads = 0;
  std::uint64_t forced_negatives = 0;
  std::uint64_t dropped_confirms = 0;
  /// Defense counters (zero when trust / overload protection are off).
  std::uint64_t trust_strikes = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t queries_shed = 0;
  std::uint64_t ttl_clamped = 0;
  std::uint64_t peak_pending_depth = 0;
};

struct RunResult {
  std::string algo;
  metrics::SearchStats search;
  metrics::LoadSummary load;
  /// Ad + search traffic shares over the measurement window (Fig 7).
  std::vector<metrics::CategoryShare> breakdown;
  /// ASAP event counters (empty-initialized for baselines).
  ads::AsapProtocol::Counters asap_counters;
  /// True for ASAP variants (gates the ad-byte metrics below).
  bool asap = false;
  /// Advertisement bytes over the measurement window: all ad categories
  /// (full + patch + refresh + packed), and the packed-frame share alone.
  Bytes ad_bytes_total = 0;
  Bytes ad_bytes_packed = 0;
  Seconds measure_start = 0.0;
  Seconds measure_end = 0.0;
  std::uint64_t engine_events = 0;
  double wall_seconds = 0.0;
  /// Simulator throughput over the whole run (engine events per wall
  /// second; 0 when the wall clock reads 0).
  double events_per_sec = 0.0;
  /// Heap bytes of per-node protocol state at the end of the run
  /// (SearchAlgorithm::state_bytes; 0 for stateless baselines).
  std::uint64_t state_bytes = 0;
  /// Process peak RSS (high-water mark) sampled at the end of the run, in
  /// bytes. Monotone across a process's runs — meaningful for a dedicated
  /// bench process, indicative only inside a long matrix sweep.
  std::uint64_t peak_rss_bytes = 0;
  /// Wall-clock phase breakdown (warm-up dissemination, query replay,
  /// reduce). The matrix runner prepends its world-build phase. Wall time
  /// is measured, never fed back into the simulation, so determinism is
  /// unaffected.
  std::vector<obs::PhaseProfile> profile;
  /// FNV-1a digest of the executed event stream and every ledger deposit
  /// (sim/audit.hpp); bit-identical across runs of the same World + seed.
  std::uint64_t digest = 0;
  /// Invariant audit outcome (only populated when opts.audit was set).
  bool audited = false;
  std::uint64_t audit_violations = 0;
  std::vector<std::string> audit_messages;  // first few violations
  /// Fault-layer outcome (enabled only when an injector was armed).
  FaultSummary faults;
};

/// Default parameters for an algorithm under the given preset.
search::BaselineParams default_baseline_params(AlgoKind k, Preset preset);
ads::AsapParams default_asap_params(AlgoKind k, Preset preset);

/// Replays the world's trace against one algorithm.
RunResult run_experiment(const World& world, AlgoKind kind,
                         const RunOptions& opts = {});

}  // namespace asap::harness
