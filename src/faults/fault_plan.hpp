// FaultPlan — a FaultConfig compiled into a concrete, seeded schedule.
//
// The plan is built once per run from the *world* seed alone (its own RNG
// stream, salted independently of the algorithm and churn streams), so:
//   * every algorithm in a matrix cell faces the identical fault schedule,
//     exactly as every algorithm sees identical trace churn;
//   * a zero-rate config compiles to an empty plan with zero RNG draws,
//     keeping faults-off runs bit-identical to the committed goldens.
//
// Crash candidates exclude every node the trace itself churns (joins,
// leaves, rejoins), so a crash-stop failure can never race a graceful
// leave on the same node.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "faults/fault_config.hpp"
#include "trace/trace.hpp"

namespace asap::faults {

class FaultPlan {
 public:
  struct Crash {
    Seconds at = 0.0;         ///< the node goes silent
    Seconds detect_at = 0.0;  ///< neighbors' keep-alives time out
    NodeId node = kInvalidNode;
  };
  struct Window {
    Seconds begin = 0.0;
    Seconds end = 0.0;
  };
  struct Partition {
    Seconds begin = 0.0;
    Seconds end = 0.0;
    std::vector<std::uint32_t> domains;  ///< cut stub domains, sorted
  };
  struct Storm {
    Seconds begin = 0.0;
    Seconds end = 0.0;
  };
  /// One synthetic flash-crowd query: emitted by `node` at `at` against a
  /// single hot `term`. The whole schedule is precomputed at build time so
  /// injection draws nothing at run time.
  struct StormQuery {
    Seconds at = 0.0;
    NodeId node = kInvalidNode;
    KeywordId term = 0;
  };

  FaultPlan() = default;

  /// Compiles `cfg` for one run. Crash/partition/burst times land inside
  /// [measure_start, measure_end); crash nodes are drawn from the initial
  /// population minus every trace-churned node.
  static FaultPlan build(const FaultConfig& cfg, std::uint64_t seed,
                         std::uint32_t initial_nodes,
                         std::span<const trace::TraceEvent> trace_events,
                         Seconds measure_start, Seconds measure_end,
                         std::uint32_t num_stub_domains);

  /// Same plan, but the trace's churn contribution arrives pre-reduced as
  /// a bitmap over the initial nodes (churned_initial[n] != 0 when the
  /// trace joins/leaves/rejoins node n). Streaming worlds never hold the
  /// events vector, so they record this bitmap during the build pre-pass.
  static FaultPlan build(const FaultConfig& cfg, std::uint64_t seed,
                         std::uint32_t initial_nodes,
                         std::span<const std::uint8_t> churned_initial,
                         Seconds measure_start, Seconds measure_end,
                         std::uint32_t num_stub_domains);

  const FaultConfig& config() const { return cfg_; }
  const std::vector<Crash>& crashes() const { return crashes_; }
  const std::vector<Window>& bursts() const { return bursts_; }
  const std::vector<Partition>& partitions() const { return partitions_; }
  /// Byzantine role rosters, each sorted by node id. Disjoint from each
  /// other, from trace-churned nodes, and from the crash roster.
  const std::vector<NodeId>& polluters() const { return polluters_; }
  const std::vector<NodeId>& stale_advertisers() const {
    return stale_advertisers_;
  }
  const std::vector<NodeId>& confirm_droppers() const {
    return confirm_droppers_;
  }
  const std::vector<Storm>& storms() const { return storms_; }
  /// Flash-crowd schedule, sorted by (at, node, term).
  const std::vector<StormQuery>& storm_queries() const {
    return storm_queries_;
  }

  bool empty() const {
    return crashes_.empty() && bursts_.empty() && partitions_.empty() &&
           polluters_.empty() && stale_advertisers_.empty() &&
           confirm_droppers_.empty() && storm_queries_.empty() &&
           cfg_.link_loss <= 0.0 && cfg_.latency_jitter <= 0.0;
  }

  /// Earliest moment the run is under fault: the first scheduled event, or
  /// measure_start when a continuous fault (link loss / jitter) is on.
  /// +infinity for an empty plan — then no query counts as "under fault".
  Seconds first_fault_time() const;

 private:
  FaultConfig cfg_;
  Seconds measure_start_ = 0.0;
  std::vector<Crash> crashes_;
  std::vector<Window> bursts_;
  std::vector<Partition> partitions_;
  std::vector<NodeId> polluters_;
  std::vector<NodeId> stale_advertisers_;
  std::vector<NodeId> confirm_droppers_;
  std::vector<Storm> storms_;
  std::vector<StormQuery> storm_queries_;
};

}  // namespace asap::faults
