#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace asap::faults {

namespace {

/// Salt for the plan's private RNG stream. Distinct from the algorithm
/// (0x517C...) and churn (0x2545...) salts so arming the fault layer never
/// perturbs either existing stream.
constexpr std::uint64_t kFaultPlanSalt = 0xD1B54A32D192ED03ULL;

/// Salt for the adversary-role stream. Separate from kFaultPlanSalt so
/// arming Byzantine roles or storms never shifts the crash/partition/burst
/// draws of the existing presets (and vice versa).
constexpr std::uint64_t kAdversarySalt = 0x8CB92BA72F3D8DD7ULL;

constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();

}  // namespace

FaultPlan FaultPlan::build(const FaultConfig& cfg, std::uint64_t seed,
                           std::uint32_t initial_nodes,
                           std::span<const trace::TraceEvent> trace_events,
                           Seconds measure_start, Seconds measure_end,
                           std::uint32_t num_stub_domains) {
  // Reduce the events to the churned-initial-node bitmap and delegate;
  // membership is a function of the trace alone, so the candidate list —
  // and therefore the draw sequence — is identical for every algorithm.
  std::vector<std::uint8_t> churned(initial_nodes, 0);
  for (const auto& ev : trace_events) {
    if (ev.type == trace::TraceEventType::kJoin ||
        ev.type == trace::TraceEventType::kLeave ||
        ev.type == trace::TraceEventType::kRejoin) {
      if (ev.node < initial_nodes) churned[ev.node] = 1;
    }
  }
  return build(cfg, seed, initial_nodes, std::span<const std::uint8_t>(churned),
               measure_start, measure_end, num_stub_domains);
}

FaultPlan FaultPlan::build(const FaultConfig& cfg, std::uint64_t seed,
                           std::uint32_t initial_nodes,
                           std::span<const std::uint8_t> churned_initial,
                           Seconds measure_start, Seconds measure_end,
                           std::uint32_t num_stub_domains) {
  cfg.validate();
  ASAP_REQUIRE(measure_end > measure_start,
               "fault plan: empty measurement window");
  ASAP_REQUIRE(churned_initial.size() >= initial_nodes,
               "fault plan: churned bitmap smaller than initial population");
  FaultPlan plan;
  plan.cfg_ = cfg;
  plan.measure_start_ = measure_start;
  if (!cfg.any()) return plan;  // zero rates: zero draws, zero events

  Rng rng(seed ^ kFaultPlanSalt);
  const Seconds window = measure_end - measure_start;

  if (cfg.crash_fraction > 0.0 && initial_nodes > 0) {
    // Candidates: initial nodes the trace never churns.
    std::span<const std::uint8_t> churned = churned_initial;
    std::vector<NodeId> candidates;
    candidates.reserve(initial_nodes);
    for (NodeId n = 0; n < initial_nodes; ++n) {
      if (!churned[n]) candidates.push_back(n);
    }
    const auto want = static_cast<std::uint32_t>(
        std::llround(cfg.crash_fraction * static_cast<double>(initial_nodes)));
    const auto count = std::min<std::uint32_t>(
        want, static_cast<std::uint32_t>(candidates.size()));
    const auto picks = rng.sample_indices(
        static_cast<std::uint32_t>(candidates.size()), count);
    plan.crashes_.reserve(count);
    for (const auto idx : picks) {
      Crash c;
      c.node = candidates[idx];
      // Crashes land in the first 80% of the window so their effects (the
      // detection delay, the repair traffic) are observable before the end.
      c.at = measure_start + rng.uniform(0.0, 0.8 * window);
      c.detect_at = c.at + cfg.crash_detection;
      plan.crashes_.push_back(c);
    }
    std::sort(plan.crashes_.begin(), plan.crashes_.end(),
              [](const Crash& a, const Crash& b) {
                if (a.at != b.at) return a.at < b.at;
                return a.node < b.node;
              });
  }

  for (std::uint32_t i = 0; i < cfg.partitions; ++i) {
    Partition p;
    const Seconds latest =
        std::max(0.0, window - cfg.partition_duration);
    p.begin = measure_start + rng.uniform(0.0, latest);
    p.end = p.begin + cfg.partition_duration;
    const auto cut = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::llround(cfg.partition_fraction *
                                                   num_stub_domains)));
    p.domains = rng.sample_indices(
        num_stub_domains, std::min(cut, num_stub_domains));
    std::sort(p.domains.begin(), p.domains.end());
    plan.partitions_.push_back(std::move(p));
  }
  std::sort(plan.partitions_.begin(), plan.partitions_.end(),
            [](const Partition& a, const Partition& b) {
              return a.begin < b.begin;
            });

  for (std::uint32_t i = 0; i < cfg.bursts; ++i) {
    Window w;
    const Seconds latest = std::max(0.0, window - cfg.burst_duration);
    w.begin = measure_start + rng.uniform(0.0, latest);
    w.end = w.begin + cfg.burst_duration;
    plan.bursts_.push_back(w);
  }
  std::sort(plan.bursts_.begin(), plan.bursts_.end(),
            [](const Window& a, const Window& b) { return a.begin < b.begin; });

  if (cfg.adversarial() && initial_nodes > 0) {
    // Dedicated stream: the draws above are untouched whether or not any
    // role is armed, and role rosters are identical across algorithms.
    Rng adv(seed ^ kAdversarySalt);
    // `taken` = nodes no role may claim: trace-churned nodes, crash picks,
    // and previously assigned roles (rosters stay mutually disjoint).
    std::vector<std::uint8_t> taken(churned_initial.begin(),
                                    churned_initial.begin() + initial_nodes);
    for (const auto& c : plan.crashes_) taken[c.node] = 1;
    const auto draw_role = [&](double fraction, std::vector<NodeId>& out) {
      if (fraction <= 0.0) return;  // zero rate: zero draws
      std::vector<NodeId> candidates;
      candidates.reserve(initial_nodes);
      for (NodeId n = 0; n < initial_nodes; ++n) {
        if (!taken[n]) candidates.push_back(n);
      }
      const auto want = static_cast<std::uint32_t>(
          std::llround(fraction * static_cast<double>(initial_nodes)));
      const auto count = std::min<std::uint32_t>(
          want, static_cast<std::uint32_t>(candidates.size()));
      const auto picks = adv.sample_indices(
          static_cast<std::uint32_t>(candidates.size()), count);
      out.reserve(count);
      for (const auto idx : picks) {
        out.push_back(candidates[idx]);
        taken[candidates[idx]] = 1;
      }
      std::sort(out.begin(), out.end());
    };
    draw_role(cfg.polluter_fraction, plan.polluters_);
    draw_role(cfg.stale_advertiser_fraction, plan.stale_advertisers_);
    draw_role(cfg.confirm_dropper_fraction, plan.confirm_droppers_);

    for (std::uint32_t i = 0; i < cfg.storms; ++i) {
      Storm st;
      const Seconds latest = std::max(0.0, window - cfg.storm_duration);
      st.begin = measure_start + adv.uniform(0.0, latest);
      st.end = st.begin + cfg.storm_duration;
      // Emitters: any un-taken node may flash-crowd (emitters across
      // storms may overlap; they hold no persistent role).
      std::vector<NodeId> candidates;
      candidates.reserve(initial_nodes);
      for (NodeId n = 0; n < initial_nodes; ++n) {
        if (!taken[n]) candidates.push_back(n);
      }
      const auto emitters = std::min<std::uint32_t>(
          cfg.storm_emitters, static_cast<std::uint32_t>(candidates.size()));
      const auto picks = adv.sample_indices(
          static_cast<std::uint32_t>(candidates.size()), emitters);
      for (const auto idx : picks) {
        const NodeId emitter = candidates[idx];
        for (std::uint32_t q = 0; q < cfg.storm_queries_per_emitter; ++q) {
          StormQuery sq;
          sq.node = emitter;
          sq.at = st.begin + adv.uniform(0.0, cfg.storm_duration);
          // Hot set: the most popular keywords (low ids under Zipf ranks).
          sq.term = static_cast<KeywordId>(
              adv.uniform_int(0, cfg.storm_hot_terms - 1));
          plan.storm_queries_.push_back(sq);
        }
      }
      plan.storms_.push_back(st);
    }
    std::sort(plan.storms_.begin(), plan.storms_.end(),
              [](const Storm& a, const Storm& b) { return a.begin < b.begin; });
    std::sort(plan.storm_queries_.begin(), plan.storm_queries_.end(),
              [](const StormQuery& a, const StormQuery& b) {
                if (a.at != b.at) return a.at < b.at;
                if (a.node != b.node) return a.node < b.node;
                return a.term < b.term;
              });
  }

  return plan;
}

Seconds FaultPlan::first_fault_time() const {
  Seconds first = kInf;
  for (const auto& c : crashes_) first = std::min(first, c.at);
  for (const auto& p : partitions_) first = std::min(first, p.begin);
  for (const auto& w : bursts_) first = std::min(first, w.begin);
  for (const auto& s : storms_) first = std::min(first, s.begin);
  if (!polluters_.empty() || !stale_advertisers_.empty() ||
      !confirm_droppers_.empty()) {
    // Byzantine roles misbehave from the first advertisement on.
    return std::min(first, measure_start_);
  }
  if (cfg_.link_loss > 0.0 || cfg_.latency_jitter > 0.0) {
    // Continuous faults: the whole measurement window is under fault.
    return std::min(first, measure_start_);
  }
  return first;
}

}  // namespace asap::faults
