#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace asap::faults {

namespace {

/// Salt for the plan's private RNG stream. Distinct from the algorithm
/// (0x517C...) and churn (0x2545...) salts so arming the fault layer never
/// perturbs either existing stream.
constexpr std::uint64_t kFaultPlanSalt = 0xD1B54A32D192ED03ULL;

constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();

}  // namespace

FaultPlan FaultPlan::build(const FaultConfig& cfg, std::uint64_t seed,
                           std::uint32_t initial_nodes,
                           std::span<const trace::TraceEvent> trace_events,
                           Seconds measure_start, Seconds measure_end,
                           std::uint32_t num_stub_domains) {
  // Reduce the events to the churned-initial-node bitmap and delegate;
  // membership is a function of the trace alone, so the candidate list —
  // and therefore the draw sequence — is identical for every algorithm.
  std::vector<std::uint8_t> churned(initial_nodes, 0);
  for (const auto& ev : trace_events) {
    if (ev.type == trace::TraceEventType::kJoin ||
        ev.type == trace::TraceEventType::kLeave ||
        ev.type == trace::TraceEventType::kRejoin) {
      if (ev.node < initial_nodes) churned[ev.node] = 1;
    }
  }
  return build(cfg, seed, initial_nodes, std::span<const std::uint8_t>(churned),
               measure_start, measure_end, num_stub_domains);
}

FaultPlan FaultPlan::build(const FaultConfig& cfg, std::uint64_t seed,
                           std::uint32_t initial_nodes,
                           std::span<const std::uint8_t> churned_initial,
                           Seconds measure_start, Seconds measure_end,
                           std::uint32_t num_stub_domains) {
  cfg.validate();
  ASAP_REQUIRE(measure_end > measure_start,
               "fault plan: empty measurement window");
  ASAP_REQUIRE(churned_initial.size() >= initial_nodes,
               "fault plan: churned bitmap smaller than initial population");
  FaultPlan plan;
  plan.cfg_ = cfg;
  plan.measure_start_ = measure_start;
  if (!cfg.any()) return plan;  // zero rates: zero draws, zero events

  Rng rng(seed ^ kFaultPlanSalt);
  const Seconds window = measure_end - measure_start;

  if (cfg.crash_fraction > 0.0 && initial_nodes > 0) {
    // Candidates: initial nodes the trace never churns.
    std::span<const std::uint8_t> churned = churned_initial;
    std::vector<NodeId> candidates;
    candidates.reserve(initial_nodes);
    for (NodeId n = 0; n < initial_nodes; ++n) {
      if (!churned[n]) candidates.push_back(n);
    }
    const auto want = static_cast<std::uint32_t>(
        std::llround(cfg.crash_fraction * static_cast<double>(initial_nodes)));
    const auto count = std::min<std::uint32_t>(
        want, static_cast<std::uint32_t>(candidates.size()));
    const auto picks = rng.sample_indices(
        static_cast<std::uint32_t>(candidates.size()), count);
    plan.crashes_.reserve(count);
    for (const auto idx : picks) {
      Crash c;
      c.node = candidates[idx];
      // Crashes land in the first 80% of the window so their effects (the
      // detection delay, the repair traffic) are observable before the end.
      c.at = measure_start + rng.uniform(0.0, 0.8 * window);
      c.detect_at = c.at + cfg.crash_detection;
      plan.crashes_.push_back(c);
    }
    std::sort(plan.crashes_.begin(), plan.crashes_.end(),
              [](const Crash& a, const Crash& b) {
                if (a.at != b.at) return a.at < b.at;
                return a.node < b.node;
              });
  }

  for (std::uint32_t i = 0; i < cfg.partitions; ++i) {
    Partition p;
    const Seconds latest =
        std::max(0.0, window - cfg.partition_duration);
    p.begin = measure_start + rng.uniform(0.0, latest);
    p.end = p.begin + cfg.partition_duration;
    const auto cut = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(std::llround(cfg.partition_fraction *
                                                   num_stub_domains)));
    p.domains = rng.sample_indices(
        num_stub_domains, std::min(cut, num_stub_domains));
    std::sort(p.domains.begin(), p.domains.end());
    plan.partitions_.push_back(std::move(p));
  }
  std::sort(plan.partitions_.begin(), plan.partitions_.end(),
            [](const Partition& a, const Partition& b) {
              return a.begin < b.begin;
            });

  for (std::uint32_t i = 0; i < cfg.bursts; ++i) {
    Window w;
    const Seconds latest = std::max(0.0, window - cfg.burst_duration);
    w.begin = measure_start + rng.uniform(0.0, latest);
    w.end = w.begin + cfg.burst_duration;
    plan.bursts_.push_back(w);
  }
  std::sort(plan.bursts_.begin(), plan.bursts_.end(),
            [](const Window& a, const Window& b) { return a.begin < b.begin; });

  return plan;
}

Seconds FaultPlan::first_fault_time() const {
  Seconds first = kInf;
  for (const auto& c : crashes_) first = std::min(first, c.at);
  for (const auto& p : partitions_) first = std::min(first, p.begin);
  for (const auto& w : bursts_) first = std::min(first, w.begin);
  if (cfg_.link_loss > 0.0 || cfg_.latency_jitter > 0.0) {
    // Continuous faults: the whole measurement window is under fault.
    return std::min(first, measure_start_);
  }
  return first;
}

}  // namespace asap::faults
