#include "faults/injector.hpp"

#include <algorithm>
#include <limits>

namespace asap::faults {

namespace {
constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();
}

FaultInjector::FaultInjector(const FaultPlan& plan,
                             const net::TransitStubNetwork& phys,
                             std::uint64_t rng_seed)
    : plan_(plan), phys_(phys), rng_(rng_seed) {
  NodeId max_node = 0;
  for (const auto& c : plan.crashes()) max_node = std::max(max_node, c.node);
  if (!plan.crashes().empty()) {
    crash_window_.assign(max_node + 1, {kInf, kInf});
    for (const auto& c : plan.crashes()) {
      crash_window_[c.node] = {c.at, c.detect_at};
    }
  }
  const auto fill = [](const std::vector<NodeId>& roster,
                       std::vector<std::uint8_t>& bitmap) {
    if (roster.empty()) return;
    bitmap.assign(roster.back() + 1, 0);  // rosters are sorted
    for (const NodeId n : roster) bitmap[n] = 1;
  };
  fill(plan.polluters(), polluter_);
  fill(plan.stale_advertisers(), stale_adv_);
  fill(plan.confirm_droppers(), dropper_);
}

void FaultInjector::arm(sim::Engine& engine, overlay::Overlay& ov,
                        trace::LiveContent& live, sim::Liveness& liveness,
                        obs::RunObserver* obs) {
  arm(engine, ov, live, liveness, obs, StormQueryFn{});
}

void FaultInjector::arm(sim::Engine& engine, overlay::Overlay& ov,
                        trace::LiveContent& live, sim::Liveness& liveness,
                        obs::RunObserver* obs, StormQueryFn on_storm_query) {
  for (const auto& c : plan_.crashes()) {
    engine.schedule_at(c.at, c.node, [this, &live, &liveness, obs, c] {
      if (!live.online(c.node)) return;  // defensive; the plan avoids churn
      // The node vanishes without the leave protocol: ground truth flips
      // immediately, the overlay keeps it until keep-alives time out.
      live.set_online(c.node, false);
      liveness.set_online(c.node, false, c.at);
      ++report_.crashes;
      ASAP_OBS_HOOK(obs, on_fault_injected());
      ASAP_OBS_HOOK(obs, trace_fault(c.at, "crash", c.node));
    });
    engine.schedule_at(c.detect_at, c.node, [&ov, obs, c] {
      if (ov.attached(c.node)) ov.detach(c.node);
      ASAP_OBS_HOOK(obs, trace_fault(c.detect_at, "detect", c.node));
    });
  }
  // Partition/burst markers are world-global (no owner node), so they use
  // the owner-less overloads and execute on shard 0.
  for (const auto& p : plan_.partitions()) {
    const Seconds begin = p.begin;
    const Seconds end = p.end;
    engine.schedule_at(begin, [this, obs, begin] {
      ++report_.partitions;
      ASAP_OBS_HOOK(obs, on_fault_injected());
      ASAP_OBS_HOOK(obs, trace_fault(begin, "partition", kInvalidNode));
    });
    engine.schedule_at(end, [obs, end] {
      ASAP_OBS_HOOK(obs, trace_fault(end, "heal", kInvalidNode));
    });
  }
  for (const auto& w : plan_.bursts()) {
    const Seconds begin = w.begin;
    const Seconds end = w.end;
    engine.schedule_at(begin, [this, obs, begin] {
      ++report_.bursts;
      ASAP_OBS_HOOK(obs, on_fault_injected());
      ASAP_OBS_HOOK(obs, trace_fault(begin, "burst", kInvalidNode));
    });
    engine.schedule_at(end, [obs, end] {
      ASAP_OBS_HOOK(obs, trace_fault(end, "burst-end", kInvalidNode));
    });
  }
  for (const auto& s : plan_.storms()) {
    const Seconds begin = s.begin;
    const Seconds end = s.end;
    engine.schedule_at(begin, [this, obs, begin] {
      ASAP_OBS_HOOK(obs, on_fault_injected());
      ASAP_OBS_HOOK(obs, trace_fault(begin, "storm", kInvalidNode));
    });
    engine.schedule_at(end, [obs, end] {
      ASAP_OBS_HOOK(obs, trace_fault(end, "storm-end", kInvalidNode));
    });
  }
  if (on_storm_query && !plan_.storm_queries().empty()) {
    // The schedule was precomputed at plan-build time; delivery draws
    // nothing, so the flash crowd composes with the loss dice untouched.
    for (const auto& sq : plan_.storm_queries()) {
      engine.schedule_at(sq.at, sq.node, [this, on_storm_query, sq] {
        ++report_.storm_queries;
        on_storm_query(sq);
      });
    }
  }
}

bool FaultInjector::in_partition_cut(PhysNodeId a, PhysNodeId b,
                                     Seconds t) const {
  for (const auto& p : plan_.partitions()) {
    if (t < p.begin || t >= p.end) continue;
    // Island id: 1 + domain for a cut stub domain's members, 0 for the
    // mainland (transit nodes are never cut — they *are* the backbone the
    // domain lost). Two different islands cannot talk.
    const auto island = [&](PhysNodeId n) -> std::uint64_t {
      if (phys_.kind(n) != net::TransitStubNetwork::NodeKind::kStub) return 0;
      const std::uint32_t dom = phys_.stub_domain_of(n);
      return std::binary_search(p.domains.begin(), p.domains.end(), dom)
                 ? 1 + static_cast<std::uint64_t>(dom)
                 : 0;
    };
    if (island(a) != island(b)) return true;
  }
  return false;
}

bool FaultInjector::transmission_lost(PhysNodeId a, PhysNodeId b, Seconds t) {
  const FaultConfig& cfg = plan_.config();
  if (!plan_.partitions().empty() && in_partition_cut(a, b, t)) {
    ++report_.partition_drops;
    return true;
  }
  if (!plan_.bursts().empty()) {
    for (const auto& w : plan_.bursts()) {
      if (t >= w.begin && t < w.end) {
        if (cfg.burst_loss > 0.0 && rng_.chance(cfg.burst_loss)) {
          ++report_.burst_drops;
          return true;
        }
        break;  // windows may overlap, but one correlated roll suffices
      }
    }
  }
  if (cfg.link_loss > 0.0 && rng_.chance(cfg.link_loss)) {
    ++report_.link_drops;
    return true;
  }
  return false;
}

}  // namespace asap::faults
