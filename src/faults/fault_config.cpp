#include "faults/fault_config.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace asap::faults {

bool FaultConfig::any() const {
  return crash_fraction > 0.0 || link_loss > 0.0 || latency_jitter > 0.0 ||
         partitions > 0 || bursts > 0 || adversarial();
}

bool FaultConfig::adversarial() const {
  return polluter_fraction > 0.0 || stale_advertiser_fraction > 0.0 ||
         confirm_dropper_fraction > 0.0 || storms > 0;
}

void FaultConfig::validate() const {
  const auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in01(crash_fraction)) {
    throw ConfigError("faults: crash_fraction out of [0,1]");
  }
  if (!in01(link_loss)) throw ConfigError("faults: link_loss out of [0,1]");
  if (!in01(burst_loss)) throw ConfigError("faults: burst_loss out of [0,1]");
  if (latency_jitter < 0.0 || latency_jitter >= 1.0) {
    throw ConfigError("faults: latency_jitter out of [0,1)");
  }
  if (partition_fraction <= 0.0 || partition_fraction > 1.0) {
    throw ConfigError("faults: partition_fraction out of (0,1]");
  }
  if (crash_detection < 0.0 || partition_duration <= 0.0 ||
      burst_duration <= 0.0 || confirm_backoff < 0.0) {
    throw ConfigError("faults: durations must be positive");
  }
  if (!in01(polluter_fraction) || !in01(stale_advertiser_fraction) ||
      !in01(confirm_dropper_fraction)) {
    throw ConfigError("faults: adversary fractions out of [0,1]");
  }
  if (polluter_fraction + stale_advertiser_fraction +
          confirm_dropper_fraction >
      1.0) {
    throw ConfigError("faults: adversary fractions sum past 1");
  }
  if (storm_duration <= 0.0 || trust_quarantine_backoff < 0.0) {
    throw ConfigError("faults: durations must be positive");
  }
  if (storms > 0 &&
      (storm_emitters == 0 || storm_queries_per_emitter == 0 ||
       storm_hot_terms == 0)) {
    throw ConfigError("faults: storm parameters must be positive");
  }
  if (!in01(trust_reward) || trust_strike_decay <= 0.0 ||
      trust_strike_decay >= 1.0 || !in01(trust_quarantine_threshold) ||
      !in01(trust_fill_gate)) {
    throw ConfigError("faults: trust parameters out of range");
  }
}

const std::vector<std::string>& fault_preset_names() {
  static const std::vector<std::string> names = {
      "none",   "churn",         "lossy", "partition",  "burst",     "chaos",
      "polluted", "polluted-open", "storm", "storm-open", "byzantine"};
  return names;
}

namespace {

/// The hardening defaults every adverse preset shares: 3 confirm attempts
/// with 0.5 s backoff, eviction after 2 consecutive silent rounds.
void harden(FaultConfig& c) {
  c.confirm_attempts = 3;
  c.stale_strikes = 2;
  c.confirm_backoff = 0.5;
}

/// The defense defaults every trust-enabled preset shares: trust scoring
/// with quarantine, the strike-per-chain accounting fix, and the
/// ad-admission fill-plausibility gate (honest max fill ~0.50 at design
/// capacity, so 0.65 has zero honest casualties).
void defend(FaultConfig& c) {
  c.trust_enabled = true;
  c.strike_per_chain = true;
  c.trust_fill_gate = 0.65;
}

/// Overload protection shared by the storm presets' defended variants.
void shield(FaultConfig& c) {
  c.pending_query_cap = 32;
  c.ttl_clamp_depth = 24;
}

std::string preset_list() {
  std::string out;
  for (const auto& n : fault_preset_names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

FaultScenario fault_preset(const std::string& name) {
  FaultScenario s;
  s.name = name;
  FaultConfig& c = s.config;
  if (name == "none") return s;
  if (name == "churn") {
    c.crash_fraction = 0.05;
    harden(c);
    return s;
  }
  if (name == "lossy") {
    c.link_loss = 0.05;
    c.latency_jitter = 0.25;
    harden(c);
    return s;
  }
  if (name == "partition") {
    c.partitions = 2;
    harden(c);
    return s;
  }
  if (name == "burst") {
    c.bursts = 3;
    harden(c);
    return s;
  }
  if (name == "chaos") {
    c.crash_fraction = 0.05;
    c.link_loss = 0.03;
    c.latency_jitter = 0.25;
    c.partitions = 1;
    c.bursts = 2;
    harden(c);
    return s;
  }
  if (name == "polluted" || name == "polluted-open") {
    c.polluter_fraction = 0.20;
    // Enough phantom bits to push a polluted filter's fill past ~0.75
    // (default geometry): with k=8 hashes a query false-matches with
    // probability fill^8, so sparse pollution is harmless — a real
    // attacker stuffs hard.
    c.pollution_bits = 16'384;
    harden(c);
    if (name == "polluted") defend(c);
    return s;
  }
  if (name == "storm" || name == "storm-open") {
    // Flash crowds, not drizzle: each episode's emitters fire fast enough
    // that an unshedded origin's pending queue climbs well past the
    // shield's cap — the defended variant must actually shed.
    c.storms = 2;
    c.storm_duration = 1.0;
    c.storm_emitters = 8;
    c.storm_queries_per_emitter = 150;
    harden(c);
    if (name == "storm") shield(c);
    return s;
  }
  if (name == "byzantine") {
    c.polluter_fraction = 0.10;
    c.stale_advertiser_fraction = 0.05;
    c.confirm_dropper_fraction = 0.05;
    c.pollution_bits = 16'384;
    c.storms = 1;
    harden(c);
    defend(c);
    shield(c);
    return s;
  }
  throw ConfigError("unknown fault preset '" + name + "' (available: " +
                    preset_list() + ", or a path to a JSON scenario file)");
}

FaultScenario scenario_from_spec(const std::string& spec) {
  const bool looks_like_path =
      spec.find('/') != std::string::npos ||
      (spec.size() > 5 && spec.compare(spec.size() - 5, 5, ".json") == 0);
  if (!looks_like_path) return fault_preset(spec);
  std::ifstream in(spec);
  if (!in) throw ConfigError("faults: cannot read scenario file " + spec);
  std::ostringstream buf;
  buf << in.rdbuf();
  return scenario_from_json(json::parse(buf.str()));
}

json::Value scenario_to_json(const FaultScenario& s) {
  const FaultConfig& c = s.config;
  json::Object o;
  o.emplace_back("name", s.name);
  o.emplace_back("crash_fraction", c.crash_fraction);
  o.emplace_back("crash_detection_s", c.crash_detection);
  o.emplace_back("link_loss", c.link_loss);
  o.emplace_back("latency_jitter", c.latency_jitter);
  o.emplace_back("partitions", static_cast<double>(c.partitions));
  o.emplace_back("partition_duration_s", c.partition_duration);
  o.emplace_back("partition_fraction", c.partition_fraction);
  o.emplace_back("bursts", static_cast<double>(c.bursts));
  o.emplace_back("burst_duration_s", c.burst_duration);
  o.emplace_back("burst_loss", c.burst_loss);
  o.emplace_back("confirm_attempts", static_cast<double>(c.confirm_attempts));
  o.emplace_back("stale_strikes", static_cast<double>(c.stale_strikes));
  o.emplace_back("confirm_backoff_s", c.confirm_backoff);
  // Adversary + defense fields: emitted only when non-default so legacy
  // scenario files round-trip byte-identically.
  if (c.adversarial() || c.trust_enabled || c.strike_per_chain ||
      c.trust_fill_gate > 0 || c.pending_query_cap > 0 ||
      c.ttl_clamp_depth > 0) {
    o.emplace_back("polluter_fraction", c.polluter_fraction);
    o.emplace_back("stale_advertiser_fraction", c.stale_advertiser_fraction);
    o.emplace_back("confirm_dropper_fraction", c.confirm_dropper_fraction);
    o.emplace_back("pollution_bits", static_cast<double>(c.pollution_bits));
    o.emplace_back("storms", static_cast<double>(c.storms));
    o.emplace_back("storm_duration_s", c.storm_duration);
    o.emplace_back("storm_emitters", static_cast<double>(c.storm_emitters));
    o.emplace_back("storm_queries_per_emitter",
                   static_cast<double>(c.storm_queries_per_emitter));
    o.emplace_back("storm_hot_terms", static_cast<double>(c.storm_hot_terms));
    o.emplace_back("trust_enabled", c.trust_enabled);
    o.emplace_back("trust_reward", c.trust_reward);
    o.emplace_back("trust_strike_decay", c.trust_strike_decay);
    o.emplace_back("trust_quarantine_threshold", c.trust_quarantine_threshold);
    o.emplace_back("trust_quarantine_backoff_s", c.trust_quarantine_backoff);
    o.emplace_back("trust_fill_gate", c.trust_fill_gate);
    o.emplace_back("strike_per_chain", c.strike_per_chain);
    o.emplace_back("pending_query_cap",
                   static_cast<double>(c.pending_query_cap));
    o.emplace_back("ttl_clamp_depth", static_cast<double>(c.ttl_clamp_depth));
  }
  return json::Value(std::move(o));
}

FaultScenario scenario_from_json(const json::Value& v) {
  FaultScenario s;
  s.name = v.at("name").as_string();
  FaultConfig& c = s.config;
  const auto num = [&](const char* key, double fallback) {
    const json::Value* f = v.find(key);
    return f != nullptr ? f->as_double() : fallback;
  };
  c.crash_fraction = num("crash_fraction", c.crash_fraction);
  c.crash_detection = num("crash_detection_s", c.crash_detection);
  c.link_loss = num("link_loss", c.link_loss);
  c.latency_jitter = num("latency_jitter", c.latency_jitter);
  c.partitions = static_cast<std::uint32_t>(num("partitions", c.partitions));
  c.partition_duration = num("partition_duration_s", c.partition_duration);
  c.partition_fraction = num("partition_fraction", c.partition_fraction);
  c.bursts = static_cast<std::uint32_t>(num("bursts", c.bursts));
  c.burst_duration = num("burst_duration_s", c.burst_duration);
  c.burst_loss = num("burst_loss", c.burst_loss);
  c.confirm_attempts =
      static_cast<std::uint32_t>(num("confirm_attempts", c.confirm_attempts));
  c.stale_strikes =
      static_cast<std::uint32_t>(num("stale_strikes", c.stale_strikes));
  c.confirm_backoff = num("confirm_backoff_s", c.confirm_backoff);
  const auto flag = [&](const char* key, bool fallback) {
    const json::Value* f = v.find(key);
    return f != nullptr ? f->as_bool() : fallback;
  };
  c.polluter_fraction = num("polluter_fraction", c.polluter_fraction);
  c.stale_advertiser_fraction =
      num("stale_advertiser_fraction", c.stale_advertiser_fraction);
  c.confirm_dropper_fraction =
      num("confirm_dropper_fraction", c.confirm_dropper_fraction);
  c.pollution_bits =
      static_cast<std::uint32_t>(num("pollution_bits", c.pollution_bits));
  c.storms = static_cast<std::uint32_t>(num("storms", c.storms));
  c.storm_duration = num("storm_duration_s", c.storm_duration);
  c.storm_emitters =
      static_cast<std::uint32_t>(num("storm_emitters", c.storm_emitters));
  c.storm_queries_per_emitter = static_cast<std::uint32_t>(
      num("storm_queries_per_emitter", c.storm_queries_per_emitter));
  c.storm_hot_terms =
      static_cast<std::uint32_t>(num("storm_hot_terms", c.storm_hot_terms));
  c.trust_enabled = flag("trust_enabled", c.trust_enabled);
  c.trust_reward = num("trust_reward", c.trust_reward);
  c.trust_strike_decay = num("trust_strike_decay", c.trust_strike_decay);
  c.trust_quarantine_threshold =
      num("trust_quarantine_threshold", c.trust_quarantine_threshold);
  c.trust_quarantine_backoff =
      num("trust_quarantine_backoff_s", c.trust_quarantine_backoff);
  c.trust_fill_gate = num("trust_fill_gate", c.trust_fill_gate);
  c.strike_per_chain = flag("strike_per_chain", c.strike_per_chain);
  c.pending_query_cap =
      static_cast<std::uint32_t>(num("pending_query_cap", c.pending_query_cap));
  c.ttl_clamp_depth =
      static_cast<std::uint32_t>(num("ttl_clamp_depth", c.ttl_clamp_depth));
  c.validate();
  return s;
}

}  // namespace asap::faults
