#include "faults/fault_config.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace asap::faults {

bool FaultConfig::any() const {
  return crash_fraction > 0.0 || link_loss > 0.0 || latency_jitter > 0.0 ||
         partitions > 0 || bursts > 0;
}

void FaultConfig::validate() const {
  const auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in01(crash_fraction)) {
    throw ConfigError("faults: crash_fraction out of [0,1]");
  }
  if (!in01(link_loss)) throw ConfigError("faults: link_loss out of [0,1]");
  if (!in01(burst_loss)) throw ConfigError("faults: burst_loss out of [0,1]");
  if (latency_jitter < 0.0 || latency_jitter >= 1.0) {
    throw ConfigError("faults: latency_jitter out of [0,1)");
  }
  if (partition_fraction <= 0.0 || partition_fraction > 1.0) {
    throw ConfigError("faults: partition_fraction out of (0,1]");
  }
  if (crash_detection < 0.0 || partition_duration <= 0.0 ||
      burst_duration <= 0.0 || confirm_backoff < 0.0) {
    throw ConfigError("faults: durations must be positive");
  }
}

const std::vector<std::string>& fault_preset_names() {
  static const std::vector<std::string> names = {
      "none", "churn", "lossy", "partition", "burst", "chaos"};
  return names;
}

namespace {

/// The hardening defaults every adverse preset shares: 3 confirm attempts
/// with 0.5 s backoff, eviction after 2 consecutive silent rounds.
void harden(FaultConfig& c) {
  c.confirm_attempts = 3;
  c.stale_strikes = 2;
  c.confirm_backoff = 0.5;
}

std::string preset_list() {
  std::string out;
  for (const auto& n : fault_preset_names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

FaultScenario fault_preset(const std::string& name) {
  FaultScenario s;
  s.name = name;
  FaultConfig& c = s.config;
  if (name == "none") return s;
  if (name == "churn") {
    c.crash_fraction = 0.05;
    harden(c);
    return s;
  }
  if (name == "lossy") {
    c.link_loss = 0.05;
    c.latency_jitter = 0.25;
    harden(c);
    return s;
  }
  if (name == "partition") {
    c.partitions = 2;
    harden(c);
    return s;
  }
  if (name == "burst") {
    c.bursts = 3;
    harden(c);
    return s;
  }
  if (name == "chaos") {
    c.crash_fraction = 0.05;
    c.link_loss = 0.03;
    c.latency_jitter = 0.25;
    c.partitions = 1;
    c.bursts = 2;
    harden(c);
    return s;
  }
  throw ConfigError("unknown fault preset '" + name + "' (available: " +
                    preset_list() + ", or a path to a JSON scenario file)");
}

FaultScenario scenario_from_spec(const std::string& spec) {
  const bool looks_like_path =
      spec.find('/') != std::string::npos ||
      (spec.size() > 5 && spec.compare(spec.size() - 5, 5, ".json") == 0);
  if (!looks_like_path) return fault_preset(spec);
  std::ifstream in(spec);
  if (!in) throw ConfigError("faults: cannot read scenario file " + spec);
  std::ostringstream buf;
  buf << in.rdbuf();
  return scenario_from_json(json::parse(buf.str()));
}

json::Value scenario_to_json(const FaultScenario& s) {
  const FaultConfig& c = s.config;
  json::Object o;
  o.emplace_back("name", s.name);
  o.emplace_back("crash_fraction", c.crash_fraction);
  o.emplace_back("crash_detection_s", c.crash_detection);
  o.emplace_back("link_loss", c.link_loss);
  o.emplace_back("latency_jitter", c.latency_jitter);
  o.emplace_back("partitions", static_cast<double>(c.partitions));
  o.emplace_back("partition_duration_s", c.partition_duration);
  o.emplace_back("partition_fraction", c.partition_fraction);
  o.emplace_back("bursts", static_cast<double>(c.bursts));
  o.emplace_back("burst_duration_s", c.burst_duration);
  o.emplace_back("burst_loss", c.burst_loss);
  o.emplace_back("confirm_attempts", static_cast<double>(c.confirm_attempts));
  o.emplace_back("stale_strikes", static_cast<double>(c.stale_strikes));
  o.emplace_back("confirm_backoff_s", c.confirm_backoff);
  return json::Value(std::move(o));
}

FaultScenario scenario_from_json(const json::Value& v) {
  FaultScenario s;
  s.name = v.at("name").as_string();
  FaultConfig& c = s.config;
  const auto num = [&](const char* key, double fallback) {
    const json::Value* f = v.find(key);
    return f != nullptr ? f->as_double() : fallback;
  };
  c.crash_fraction = num("crash_fraction", c.crash_fraction);
  c.crash_detection = num("crash_detection_s", c.crash_detection);
  c.link_loss = num("link_loss", c.link_loss);
  c.latency_jitter = num("latency_jitter", c.latency_jitter);
  c.partitions = static_cast<std::uint32_t>(num("partitions", c.partitions));
  c.partition_duration = num("partition_duration_s", c.partition_duration);
  c.partition_fraction = num("partition_fraction", c.partition_fraction);
  c.bursts = static_cast<std::uint32_t>(num("bursts", c.bursts));
  c.burst_duration = num("burst_duration_s", c.burst_duration);
  c.burst_loss = num("burst_loss", c.burst_loss);
  c.confirm_attempts =
      static_cast<std::uint32_t>(num("confirm_attempts", c.confirm_attempts));
  c.stale_strikes =
      static_cast<std::uint32_t>(num("stale_strikes", c.stale_strikes));
  c.confirm_backoff = num("confirm_backoff_s", c.confirm_backoff);
  c.validate();
  return s;
}

}  // namespace asap::faults
