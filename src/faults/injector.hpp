// FaultInjector — executes one FaultPlan against one simulation run.
//
// The injector owns the only RNG that fault verdicts draw from (seeded
// from the run seed with a salt of its own), and it draws *only* when a
// fault class is actually configured — so an armed injector with all rates
// at zero makes zero draws, schedules zero events, and leaves the run
// digest bit-identical to a faults-off run (the determinism guard in
// tests/harness/fault_injection_test.cpp).
//
// Crash-stop semantics: at crash time the node silently drops out of the
// ground truth (LiveContent/Liveness) but stays attached to the overlay
// until detect_at — during that window, dead_unnoticed() is true and
// senders still pay for transmissions into the void (keep-alives have not
// timed out yet). At detect_at the node is detached like a graceful leave.
//
// Partition semantics: while an episode is open, any transmission whose
// endpoints are not in the same island (a cut stub domain is one island
// each; everything else is the mainland) is dropped deterministically — no
// RNG draw, so partitions compose with the loss dice without perturbing
// them.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "faults/fault_plan.hpp"
#include "net/transit_stub.hpp"
#include "obs/observer.hpp"
#include "overlay/overlay.hpp"
#include "sim/engine.hpp"
#include "sim/liveness.hpp"
#include "trace/live_content.hpp"

namespace asap::faults {

class FaultInjector {
 public:
  /// What the injector actually did to one run.
  struct Report {
    std::uint64_t crashes = 0;
    std::uint64_t partitions = 0;
    std::uint64_t bursts = 0;
    std::uint64_t link_drops = 0;
    std::uint64_t burst_drops = 0;
    std::uint64_t partition_drops = 0;
    /// Transmissions paid for to crashed-but-undetected nodes.
    std::uint64_t dead_sends = 0;
    /// Synthetic flash-crowd queries actually injected.
    std::uint64_t storm_queries = 0;
  };

  /// Receives each synthetic flash-crowd query at its scheduled time.
  using StormQueryFn = std::function<void(const FaultPlan::StormQuery&)>;

  FaultInjector(const FaultPlan& plan, const net::TransitStubNetwork& phys,
                std::uint64_t rng_seed);

  /// Schedules the plan's crash/detect events and partition/burst window
  /// markers on the engine. Call exactly once, before warm-up. `obs` may
  /// be null; marker events are scheduled regardless so an observer never
  /// changes the event stream (passivity).
  void arm(sim::Engine& engine, overlay::Overlay& ov,
           trace::LiveContent& live, sim::Liveness& liveness,
           obs::RunObserver* obs);

  /// Same, plus a sink for the plan's flash-crowd schedule: each
  /// StormQuery is delivered to `on_storm_query` at its scheduled time
  /// (skipped entirely when the sink is null — algorithms that cannot
  /// absorb synthetic queries see only the storm window markers).
  void arm(sim::Engine& engine, overlay::Overlay& ov,
           trace::LiveContent& live, sim::Liveness& liveness,
           obs::RunObserver* obs, StormQueryFn on_storm_query);

  /// Fault-layer loss verdict for one transmission at hop time `t`, rolled
  /// after (and independently of) the base message_loss dice. Order:
  /// partition cut (deterministic) → burst loss → link loss.
  bool transmission_lost(PhysNodeId a, PhysNodeId b, Seconds t);

  /// Applies latency jitter to one delivered hop (no draw when jitter is
  /// off; latency 0 stays 0 — the jitter is multiplicative).
  ///
  /// Jittered latencies can never go negative, so no jitter call site can
  /// schedule an event before now() or deposit at a negative ledger time:
  /// FaultConfig::validate() pins latency_jitter to [0, 1), making the
  /// scale factor uniform(1 - j, 1 + j) ⊂ (0, 2), and base latencies are
  /// non-negative by construction (net::TransitStub). Engine::schedule_at
  /// and BandwidthLedger::deposit still guard/clamp defensively.
  Seconds hop_latency(Seconds base) {
    const double j = plan_.config().latency_jitter;
    if (j <= 0.0) return base;
    return base * rng_.uniform(1.0 - j, 1.0 + j);
  }

  /// True while `n` has crash-stopped but neighbors' keep-alives have not
  /// timed out yet: senders still pay for transmissions to it.
  bool dead_unnoticed(NodeId n, Seconds t) const {
    return n < crash_window_.size() && t >= crash_window_[n].first &&
           t < crash_window_[n].second;
  }

  /// True once `n` has crash-stopped (detected or not).
  bool crashed(NodeId n, Seconds t) const {
    return n < crash_window_.size() && t >= crash_window_[n].first;
  }

  void count_dead_send() { ++report_.dead_sends; }

  /// Byzantine role membership, O(1). All false when the plan holds no
  /// roles (the bitmaps stay empty — vanilla runs pay one size check).
  bool is_polluter(NodeId n) const {
    return n < polluter_.size() && polluter_[n] != 0;
  }
  bool is_stale_advertiser(NodeId n) const {
    return n < stale_adv_.size() && stale_adv_[n] != 0;
  }
  bool is_confirm_dropper(NodeId n) const {
    return n < dropper_.size() && dropper_[n] != 0;
  }

  const Report& report() const { return report_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  bool in_partition_cut(PhysNodeId a, PhysNodeId b, Seconds t) const;

  const FaultPlan& plan_;  // not owned; outlives the injector
  const net::TransitStubNetwork& phys_;
  Rng rng_;
  Report report_;
  /// Per overlay node: [crash_at, detect_at); (+inf, +inf) if never
  /// crashing. Indexed lookups keep dead_unnoticed O(1) on hot paths.
  std::vector<std::pair<Seconds, Seconds>> crash_window_;
  /// Role bitmaps; empty unless the plan holds the matching roster.
  std::vector<std::uint8_t> polluter_;
  std::vector<std::uint8_t> stale_adv_;
  std::vector<std::uint8_t> dropper_;
};

}  // namespace asap::faults
