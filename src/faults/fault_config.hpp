// Deterministic fault-injection configuration (DESIGN.md §11).
//
// A FaultConfig describes *what* adversity a run is subjected to; the
// FaultPlan (fault_plan.hpp) compiles it into a concrete, seeded schedule
// and the FaultInjector (injector.hpp) executes that schedule against one
// run. Four fault classes, all off by default:
//
//   * crash-stop failures — a node vanishes without the leave protocol
//     (keep-alives go silent, stale ads stay stranded in peer caches),
//     distinct from a graceful trace kLeave;
//   * per-link loss and latency jitter on top of the transit-stub
//     latencies;
//   * network partitions — a set of stub domains is cut off from the rest
//     of the physical network for an interval, then heals;
//   * burst loss windows — correlated loss at a high rate for [t0, t1).
//
// The config also carries the protocol-hardening knobs the harness applies
// to AsapParams when (and only when) the fault layer is active, so a
// faults-off run keeps today's protocol behaviour bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"

namespace asap::faults {

struct FaultConfig {
  // --- crash-stop failures ----------------------------------------------
  /// Fraction of the initial population that crash-stops during the
  /// measurement window (trace-churned nodes are never picked, so crashes
  /// and graceful churn cannot collide on one node).
  double crash_fraction = 0.0;
  /// Keep-alive detection delay: for this long after a crash, neighbors
  /// still believe the node is up and pay for transmissions to it.
  Seconds crash_detection = 30.0;

  // --- link layer --------------------------------------------------------
  /// Per-transmission loss probability, independent of (and on top of)
  /// the scalar RunOptions::message_loss.
  double link_loss = 0.0;
  /// Multiplicative latency jitter: each delivered hop's latency is scaled
  /// by uniform(1 - j, 1 + j). 0 disables (and draws nothing).
  double latency_jitter = 0.0;

  // --- partitions --------------------------------------------------------
  /// Number of partition episodes within the measurement window.
  std::uint32_t partitions = 0;
  Seconds partition_duration = 60.0;
  /// Fraction of stub domains cut off per episode (at least one).
  double partition_fraction = 0.10;

  // --- burst loss --------------------------------------------------------
  /// Number of correlated-loss windows within the measurement window.
  std::uint32_t bursts = 0;
  Seconds burst_duration = 15.0;
  /// Loss probability applied to every transmission inside a burst window.
  double burst_loss = 0.9;

  // --- adversarial (Byzantine) roles -------------------------------------
  // Seeded per-node role assignment, drawn from a dedicated adversary RNG
  // stream so arming a role never perturbs the crash/partition/burst
  // schedules of the existing presets. Roles are disjoint from each other
  // and from trace-churned nodes.
  /// Fraction of initial nodes that stuff every published ad's filter with
  /// phantom set bits (false-positive pollution).
  double polluter_fraction = 0.0;
  /// Fraction that advertise honestly but always answer confirms
  /// negatively (advertise-then-never-serve).
  double stale_advertiser_fraction = 0.0;
  /// Fraction that silently drop confirm requests (the requester times
  /// out; no reply bytes are ever paid).
  double confirm_dropper_fraction = 0.0;
  /// Extra phantom bits a polluter sets per published full ad.
  std::uint32_t pollution_bits = 64;

  // --- query storms -------------------------------------------------------
  /// Number of flash-crowd storm episodes within the measurement window.
  std::uint32_t storms = 0;
  Seconds storm_duration = 30.0;
  /// Emitter nodes per storm episode (capped at the live population).
  std::uint32_t storm_emitters = 24;
  /// Synthetic queries each emitter fires per episode.
  std::uint32_t storm_queries_per_emitter = 40;
  /// Hot term set: storm queries draw from the `storm_hot_terms` most
  /// popular keywords (low KeywordIds are most popular under Zipf ranks).
  std::uint32_t storm_hot_terms = 8;

  // --- defense (applied only when the fault layer is armed) ---------------
  /// Master switch for per-source trust scoring on AdCache entries.
  bool trust_enabled = false;
  /// Reward on a confirmed hit: trust += reward * (1 - trust).
  double trust_reward = 0.3;
  /// Multiplicative decay per strike (false positive or confirm-timeout
  /// chain): trust *= decay.
  double trust_strike_decay = 0.5;
  /// Entries whose source trust falls below this are quarantined.
  double trust_quarantine_threshold = 0.2;
  /// Re-admit backoff base after quarantine; doubles per repeat offense.
  Seconds trust_quarantine_backoff = 120.0;
  /// Ad-admission plausibility gate: any ad whose Bloom fill ratio exceeds
  /// this is admitted fully distrusted (demote-and-verify), so confirm
  /// probes rank honest sources first while the polluter's real content
  /// stays reachable as a last resort. An honest filter at the design
  /// keyword capacity fills ~0.50, so the defended presets use 0.65 — zero
  /// honest casualties. 0 = gate off.
  double trust_fill_gate = 0.0;
  /// One strike per confirm attempt chain (satellite fix for the
  /// erase_stale / retry double-count); off keeps legacy accounting.
  bool strike_per_chain = false;
  /// Bounded per-origin pending-query queue; 0 = unbounded (legacy).
  std::uint32_t pending_query_cap = 0;
  /// When an origin's pending depth reaches this, phase-2 ads-requests are
  /// suppressed (TTL clamp-down); 0 = never clamp.
  std::uint32_t ttl_clamp_depth = 0;

  /// True when any adversarial role or storm is configured (defense knobs
  /// alone do not count, mirroring the hardening knobs).
  bool adversarial() const;

  // --- protocol hardening (applied only when the fault layer is armed) ---
  /// Confirm attempts per candidate; 0 = keep the protocol default (1).
  std::uint32_t confirm_attempts = 0;
  /// Consecutive confirm timeouts before a source's ad is evicted as
  /// stale; 0 = keep the protocol default (1).
  std::uint32_t stale_strikes = 0;
  /// Exponential-backoff base between confirm attempts; 0 = protocol
  /// default.
  Seconds confirm_backoff = 0.0;

  /// True when any fault class is actually injected (hardening and defense
  /// knobs alone do not count: they change nothing unless an injector is
  /// armed).
  bool any() const;
  /// Throws ConfigError on out-of-range rates or durations.
  void validate() const;
};

/// A named FaultConfig — the matrix runner's scenario-axis element.
struct FaultScenario {
  std::string name = "none";
  FaultConfig config;
};

/// Built-in preset names, in canonical order.
const std::vector<std::string>& fault_preset_names();

/// Resolves a built-in preset. Throws ConfigError with the preset list on
/// an unknown name.
FaultScenario fault_preset(const std::string& name);

/// Resolves a --faults item: a preset name, or a path to a JSON file
/// (recognized by containing '/' or ending in ".json") holding a scenario
/// object. Throws ConfigError with a readable message otherwise.
FaultScenario scenario_from_spec(const std::string& spec);

json::Value scenario_to_json(const FaultScenario& s);
FaultScenario scenario_from_json(const json::Value& v);

}  // namespace asap::faults
