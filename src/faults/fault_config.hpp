// Deterministic fault-injection configuration (DESIGN.md §11).
//
// A FaultConfig describes *what* adversity a run is subjected to; the
// FaultPlan (fault_plan.hpp) compiles it into a concrete, seeded schedule
// and the FaultInjector (injector.hpp) executes that schedule against one
// run. Four fault classes, all off by default:
//
//   * crash-stop failures — a node vanishes without the leave protocol
//     (keep-alives go silent, stale ads stay stranded in peer caches),
//     distinct from a graceful trace kLeave;
//   * per-link loss and latency jitter on top of the transit-stub
//     latencies;
//   * network partitions — a set of stub domains is cut off from the rest
//     of the physical network for an interval, then heals;
//   * burst loss windows — correlated loss at a high rate for [t0, t1).
//
// The config also carries the protocol-hardening knobs the harness applies
// to AsapParams when (and only when) the fault layer is active, so a
// faults-off run keeps today's protocol behaviour bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"

namespace asap::faults {

struct FaultConfig {
  // --- crash-stop failures ----------------------------------------------
  /// Fraction of the initial population that crash-stops during the
  /// measurement window (trace-churned nodes are never picked, so crashes
  /// and graceful churn cannot collide on one node).
  double crash_fraction = 0.0;
  /// Keep-alive detection delay: for this long after a crash, neighbors
  /// still believe the node is up and pay for transmissions to it.
  Seconds crash_detection = 30.0;

  // --- link layer --------------------------------------------------------
  /// Per-transmission loss probability, independent of (and on top of)
  /// the scalar RunOptions::message_loss.
  double link_loss = 0.0;
  /// Multiplicative latency jitter: each delivered hop's latency is scaled
  /// by uniform(1 - j, 1 + j). 0 disables (and draws nothing).
  double latency_jitter = 0.0;

  // --- partitions --------------------------------------------------------
  /// Number of partition episodes within the measurement window.
  std::uint32_t partitions = 0;
  Seconds partition_duration = 60.0;
  /// Fraction of stub domains cut off per episode (at least one).
  double partition_fraction = 0.10;

  // --- burst loss --------------------------------------------------------
  /// Number of correlated-loss windows within the measurement window.
  std::uint32_t bursts = 0;
  Seconds burst_duration = 15.0;
  /// Loss probability applied to every transmission inside a burst window.
  double burst_loss = 0.9;

  // --- protocol hardening (applied only when the fault layer is armed) ---
  /// Confirm attempts per candidate; 0 = keep the protocol default (1).
  std::uint32_t confirm_attempts = 0;
  /// Consecutive confirm timeouts before a source's ad is evicted as
  /// stale; 0 = keep the protocol default (1).
  std::uint32_t stale_strikes = 0;
  /// Exponential-backoff base between confirm attempts; 0 = protocol
  /// default.
  Seconds confirm_backoff = 0.0;

  /// True when any fault class is actually injected (hardening knobs alone
  /// do not count: they change nothing unless an injector is armed).
  bool any() const;
  /// Throws ConfigError on out-of-range rates or durations.
  void validate() const;
};

/// A named FaultConfig — the matrix runner's scenario-axis element.
struct FaultScenario {
  std::string name = "none";
  FaultConfig config;
};

/// Built-in preset names, in canonical order.
const std::vector<std::string>& fault_preset_names();

/// Resolves a built-in preset. Throws ConfigError with the preset list on
/// an unknown name.
FaultScenario fault_preset(const std::string& name);

/// Resolves a --faults item: a preset name, or a path to a JSON file
/// (recognized by containing '/' or ending in ".json") holding a scenario
/// object. Throws ConfigError with a readable message otherwise.
FaultScenario scenario_from_spec(const std::string& spec);

json::Value scenario_to_json(const FaultScenario& s);
FaultScenario scenario_from_json(const json::Value& v);

}  // namespace asap::faults
