// Transit-stub physical network model (GT-ITM, Zegura et al. [26]) with a
// hierarchical latency oracle.
//
// The paper's experimental framework (§IV-A):
//   * 9 transit domains x 16 transit nodes = 144 transit nodes,
//   * each transit node carries 9 stub domains x 40 stub nodes,
//   * total 144 + 144*9*40 = 51,984 physical nodes,
//   * transit domains fully connected at the top level,
//   * intra-transit-domain edge probability 0.6, intra-stub 0.4,
//   * latencies: 50 ms inter-transit-domain, 20 ms intra-transit-domain,
//     5 ms transit<->stub, 2 ms intra-stub-domain.
//
// Routing follows the transit-stub hierarchy (as GT-ITM's routing policy
// does): traffic between different stub domains exits through the stub
// domain's gateway to its parent transit node, crosses the transit overlay,
// and descends into the destination stub domain. This lets us answer
// point-to-point latency queries from three small precomputed tables
// (per-stub-domain APSP, per-stub-domain gateway distances, transit APSP)
// instead of an infeasible 52k x 52k matrix.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace asap::net {

struct TransitStubParams {
  std::uint32_t transit_domains = 9;
  std::uint32_t transit_nodes_per_domain = 16;
  std::uint32_t stub_domains_per_transit = 9;
  std::uint32_t stub_nodes_per_domain = 40;
  double intra_transit_edge_prob = 0.6;
  double intra_stub_edge_prob = 0.4;
  Seconds inter_transit_latency = ms(50);
  Seconds intra_transit_latency = ms(20);
  Seconds transit_stub_latency = ms(5);
  Seconds intra_stub_latency = ms(2);

  /// Scaled-down preset used by default on small machines (~5.2k nodes).
  static TransitStubParams small();
  /// Paper-scale preset: 51,984 physical nodes.
  static TransitStubParams paper();

  std::uint32_t total_transit_nodes() const {
    return transit_domains * transit_nodes_per_domain;
  }
  std::uint32_t total_stub_domains() const {
    return total_transit_nodes() * stub_domains_per_transit;
  }
  std::uint32_t total_nodes() const {
    return total_transit_nodes() +
           total_stub_domains() * stub_nodes_per_domain;
  }
};

/// Immutable transit-stub topology plus O(1) latency queries after an
/// O(domains * s^3) preprocessing step (s = stub nodes per domain).
class TransitStubNetwork {
 public:
  enum class NodeKind : std::uint8_t { kTransit, kStub };

  /// Generates a connected topology. Throws ConfigError on bad params.
  static TransitStubNetwork generate(const TransitStubParams& params,
                                     Rng& rng);

  std::uint32_t num_nodes() const { return num_nodes_; }
  const TransitStubParams& params() const { return params_; }

  NodeKind kind(PhysNodeId n) const;
  /// Transit node a stub node routes through (for transit nodes: itself).
  PhysNodeId parent_transit(PhysNodeId n) const;
  /// Stub domain index of a stub node (throws for transit nodes).
  std::uint32_t stub_domain_of(PhysNodeId n) const;

  /// One-way propagation latency between any two physical nodes, following
  /// hierarchical routing. latency(a, a) == 0.
  Seconds latency(PhysNodeId a, PhysNodeId b) const;

  /// Total number of undirected links (for tests / reporting).
  std::uint64_t num_links() const { return num_links_; }

 private:
  TransitStubNetwork() = default;

  // --- transit level ---
  // Dense APSP over all transit nodes (<=256 in practice).
  std::vector<float> transit_dist_;  // row-major T x T
  std::uint32_t num_transit_ = 0;

  // --- stub level ---
  // Per stub domain: APSP over its s nodes and the gateway member index.
  struct StubDomain {
    std::uint32_t first_node = 0;   // PhysNodeId of member 0
    std::uint32_t gateway = 0;      // member index connected to the transit
    PhysNodeId transit = 0;         // parent transit node
    std::vector<float> dist;        // row-major s x s
  };
  std::vector<StubDomain> stub_domains_;
  std::uint32_t stub_size_ = 0;

  std::uint32_t num_nodes_ = 0;
  std::uint64_t num_links_ = 0;
  TransitStubParams params_;

  float transit_dist(std::uint32_t a, std::uint32_t b) const {
    return transit_dist_[a * num_transit_ + b];
  }
};

}  // namespace asap::net
