#include "net/transit_stub.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace asap::net {

namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

/// Floyd-Warshall in place on a row-major n x n matrix.
void floyd_warshall(std::vector<float>& d, std::uint32_t n) {
  for (std::uint32_t k = 0; k < n; ++k) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const float dik = d[i * n + k];
      if (dik == kInf) continue;
      float* di = &d[i * n];
      const float* dk = &d[k * n];
      for (std::uint32_t j = 0; j < n; ++j) {
        const float via = dik + dk[j];
        if (via < di[j]) di[j] = via;
      }
    }
  }
}

/// Builds a connected random graph on n vertices into the distance matrix:
/// a random spanning tree guarantees connectivity, then each remaining pair
/// is linked with probability p. Every edge has weight w. Returns #edges.
std::uint64_t random_connected_graph(std::vector<float>& d, std::uint32_t n,
                                     double p, float w, Rng& rng) {
  std::fill(d.begin(), d.end(), kInf);
  for (std::uint32_t i = 0; i < n; ++i) d[i * n + i] = 0.0F;
  std::uint64_t edges = 0;
  auto connect = [&](std::uint32_t a, std::uint32_t b) {
    if (d[a * n + b] == kInf) {
      d[a * n + b] = w;
      d[b * n + a] = w;
      ++edges;
    }
  };
  // Random spanning tree: attach each vertex to a uniformly random earlier
  // vertex (random recursive tree).
  for (std::uint32_t i = 1; i < n; ++i) {
    connect(i, static_cast<std::uint32_t>(rng.below(i)));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      if (d[i * n + j] == kInf && rng.chance(p)) connect(i, j);
    }
  }
  return edges;
}

}  // namespace

TransitStubParams TransitStubParams::small() {
  TransitStubParams p;
  p.transit_domains = 4;
  p.transit_nodes_per_domain = 8;
  p.stub_domains_per_transit = 4;
  p.stub_nodes_per_domain = 40;
  return p;  // 32 + 32*4*40 = 5,152 physical nodes
}

TransitStubParams TransitStubParams::paper() {
  return TransitStubParams{};  // defaults match the paper: 51,984 nodes
}

TransitStubNetwork TransitStubNetwork::generate(
    const TransitStubParams& params, Rng& rng) {
  ASAP_REQUIRE(params.transit_domains >= 1, "need at least 1 transit domain");
  ASAP_REQUIRE(params.transit_nodes_per_domain >= 1,
               "need at least 1 transit node per domain");
  ASAP_REQUIRE(params.stub_nodes_per_domain >= 1,
               "need at least 1 stub node per domain");
  ASAP_REQUIRE(params.intra_transit_edge_prob >= 0.0 &&
                   params.intra_transit_edge_prob <= 1.0,
               "edge probability out of [0,1]");
  ASAP_REQUIRE(params.intra_stub_edge_prob >= 0.0 &&
                   params.intra_stub_edge_prob <= 1.0,
               "edge probability out of [0,1]");

  TransitStubNetwork net;
  net.params_ = params;
  net.num_transit_ = params.total_transit_nodes();
  net.stub_size_ = params.stub_nodes_per_domain;
  net.num_nodes_ = params.total_nodes();

  const std::uint32_t t = net.num_transit_;
  const std::uint32_t per_dom = params.transit_nodes_per_domain;

  // --- transit graph ---------------------------------------------------
  net.transit_dist_.assign(static_cast<std::size_t>(t) * t, kInf);
  auto& td = net.transit_dist_;
  for (std::uint32_t i = 0; i < t; ++i) td[i * t + i] = 0.0F;

  auto connect_transit = [&](std::uint32_t a, std::uint32_t b, float w) {
    if (td[a * t + b] > w) {
      td[a * t + b] = w;
      td[b * t + a] = w;
      ++net.num_links_;
    }
  };

  // Intra-domain: connected random graph per domain (prob 0.6, 20 ms).
  {
    const auto w = static_cast<float>(params.intra_transit_latency);
    std::vector<float> dom(static_cast<std::size_t>(per_dom) * per_dom);
    for (std::uint32_t dmn = 0; dmn < params.transit_domains; ++dmn) {
      net.num_links_ += random_connected_graph(
          dom, per_dom, params.intra_transit_edge_prob, w, rng);
      const std::uint32_t base = dmn * per_dom;
      for (std::uint32_t i = 0; i < per_dom; ++i) {
        for (std::uint32_t j = 0; j < per_dom; ++j) {
          if (i != j && dom[i * per_dom + j] == w) {
            td[(base + i) * t + (base + j)] = w;
          }
        }
      }
    }
  }

  // Inter-domain: every pair of domains joined by one edge between random
  // representatives (domain-level complete graph, 50 ms).
  {
    const auto w = static_cast<float>(params.inter_transit_latency);
    for (std::uint32_t a = 0; a < params.transit_domains; ++a) {
      for (std::uint32_t b = a + 1; b < params.transit_domains; ++b) {
        const auto na =
            a * per_dom + static_cast<std::uint32_t>(rng.below(per_dom));
        const auto nb =
            b * per_dom + static_cast<std::uint32_t>(rng.below(per_dom));
        connect_transit(na, nb, w);
      }
    }
  }

  floyd_warshall(net.transit_dist_, t);

  // --- stub domains -----------------------------------------------------
  const std::uint32_t s = params.stub_nodes_per_domain;
  const std::uint32_t num_sd = params.total_stub_domains();
  net.stub_domains_.resize(num_sd);
  const auto ws = static_cast<float>(params.intra_stub_latency);
  std::uint32_t next_node = t;  // stub PhysNodeIds start after transit nodes
  for (std::uint32_t sd = 0; sd < num_sd; ++sd) {
    StubDomain& dom = net.stub_domains_[sd];
    dom.first_node = next_node;
    next_node += s;
    dom.transit = sd / params.stub_domains_per_transit;
    dom.gateway = static_cast<std::uint32_t>(rng.below(s));
    dom.dist.resize(static_cast<std::size_t>(s) * s);
    net.num_links_ += random_connected_graph(
        dom.dist, s, params.intra_stub_edge_prob, ws, rng);
    ++net.num_links_;  // gateway <-> transit uplink
    floyd_warshall(dom.dist, s);
  }
  ASAP_CHECK(next_node == net.num_nodes_);
  return net;
}

TransitStubNetwork::NodeKind TransitStubNetwork::kind(PhysNodeId n) const {
  ASAP_DCHECK(n < num_nodes_);
  return n < num_transit_ ? NodeKind::kTransit : NodeKind::kStub;
}

PhysNodeId TransitStubNetwork::parent_transit(PhysNodeId n) const {
  if (n < num_transit_) return n;
  return stub_domains_[stub_domain_of(n)].transit;
}

std::uint32_t TransitStubNetwork::stub_domain_of(PhysNodeId n) const {
  ASAP_REQUIRE(n >= num_transit_ && n < num_nodes_,
               "stub_domain_of requires a stub node");
  return (n - num_transit_) / stub_size_;
}

Seconds TransitStubNetwork::latency(PhysNodeId a, PhysNodeId b) const {
  ASAP_DCHECK(a < num_nodes_ && b < num_nodes_);
  if (a == b) return 0.0;

  const auto uplink = params_.transit_stub_latency;

  // Distance from a node to "its transit attachment point", plus which
  // transit node that is. For a transit node that is (0, itself); for a
  // stub node it is (dist-to-gateway + uplink, parent transit).
  auto to_transit = [&](PhysNodeId n, std::uint32_t& transit) -> Seconds {
    if (n < num_transit_) {
      transit = n;
      return 0.0;
    }
    const StubDomain& dom = stub_domains_[stub_domain_of(n)];
    const std::uint32_t member = n - dom.first_node;
    transit = dom.transit;
    return static_cast<Seconds>(
               dom.dist[member * stub_size_ + dom.gateway]) +
           uplink;
  };

  // Same stub domain: route stays inside the domain.
  if (a >= num_transit_ && b >= num_transit_) {
    const std::uint32_t sda = stub_domain_of(a);
    if (sda == stub_domain_of(b)) {
      const StubDomain& dom = stub_domains_[sda];
      const std::uint32_t ma = a - dom.first_node;
      const std::uint32_t mb = b - dom.first_node;
      return static_cast<Seconds>(dom.dist[ma * stub_size_ + mb]);
    }
  }

  std::uint32_t ta = 0, tb = 0;
  const Seconds up_a = to_transit(a, ta);
  const Seconds up_b = to_transit(b, tb);
  return up_a + static_cast<Seconds>(transit_dist(ta, tb)) + up_b;
}

}  // namespace asap::net
