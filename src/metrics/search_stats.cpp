#include "metrics/search_stats.hpp"

#include <algorithm>

namespace asap::metrics {

void SearchStats::add(const SearchRecord& r) {
  ++total_;
  cost_.add(static_cast<double>(r.cost_bytes));
  messages_.add(static_cast<double>(r.messages));
  results_.add(static_cast<double>(r.results));
  if (r.success) {
    ++successes_;
    response_time_.add(r.response_time);
    response_samples_.push_back(r.response_time);
    sorted_samples_.clear();  // invalidate the percentile cache
  }
  if (r.local_hit) ++local_hits_;
  if (r.issued_at >= fault_onset_) {
    ++after_onset_total_;
    if (r.success) ++after_onset_successes_;
  }
}

double SearchStats::success_rate_after_onset() const {
  return after_onset_total_ == 0
             ? 0.0
             : static_cast<double>(after_onset_successes_) /
                   static_cast<double>(after_onset_total_);
}

double SearchStats::success_rate() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(successes_) /
                           static_cast<double>(total_);
}

double SearchStats::response_percentile(double q) const {
  if (response_samples_.empty()) return 0.0;
  if (sorted_samples_.empty()) {
    sorted_samples_ = response_samples_;
    std::sort(sorted_samples_.begin(), sorted_samples_.end());
  }
  return percentile_sorted(sorted_samples_, q);
}

double SearchStats::local_hit_rate() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(local_hits_) /
                           static_cast<double>(total_);
}

}  // namespace asap::metrics
