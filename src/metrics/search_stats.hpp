// Per-search outcome collection (paper §V-A).
//
// Success rate    = fraction of searches with at least one result,
// response time   = mean over *successful* searches of the time until the
//                   first result arrives,
// search cost     = mean bandwidth consumed by a search process (baselines:
//                   query messages only; ASAP: confirmation + ads-request
//                   traffic — §V-A).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace asap::metrics {

struct SearchRecord {
  bool success = false;
  Seconds response_time = 0.0;  // valid when success
  Bytes cost_bytes = 0;
  std::uint64_t messages = 0;
  bool local_hit = false;  // ASAP only: answered from the local ads cache
  /// Number of distinct positive results obtained (ASAP: positive
  /// confirmations; baselines: responding holders).
  std::uint32_t results = 0;
  /// Virtual time the query was issued; used only to attribute the search
  /// to the pre- or post-fault-onset window.
  Seconds issued_at = 0.0;
};

class SearchStats {
 public:
  void add(const SearchRecord& r);

  std::uint64_t total() const { return total_; }
  std::uint64_t successes() const { return successes_; }
  double success_rate() const;
  /// Mean response time over successful searches, seconds.
  double avg_response_time() const { return response_time_.mean(); }
  /// Mean bandwidth per search process, bytes.
  double avg_cost_bytes() const { return cost_.mean(); }
  double avg_messages() const { return messages_.mean(); }
  /// Fraction of searches resolved from the local ads cache (ASAP only).
  double local_hit_rate() const;
  /// Mean number of results per search (all searches).
  double avg_results() const { return results_.mean(); }

  const RunningStats& response_time_stats() const { return response_time_; }
  const RunningStats& cost_stats() const { return cost_; }
  /// Raw response-time samples (successful searches), for percentiles.
  const std::vector<double>& response_samples() const {
    return response_samples_;
  }
  /// Response-time percentile over successful searches (q in [0,1]).
  /// Defined for empty runs: 0.0 when no search succeeded, mirroring the
  /// other accessors, instead of tripping percentile()'s empty-set check.
  /// The samples are sorted lazily and the order is cached, so reading
  /// several quantiles (p50 + p95 per aggregation cell) sorts once
  /// instead of copying the sample vector per call.
  double response_percentile(double q) const;

  /// Marks the first fault-injection instant; searches issued at or after
  /// it are additionally tallied into the post-onset window below. Default
  /// +inf means no fault layer: the window stays empty.
  void set_fault_onset(Seconds t) { fault_onset_ = t; }
  std::uint64_t total_after_onset() const { return after_onset_total_; }
  std::uint64_t successes_after_onset() const {
    return after_onset_successes_;
  }
  /// Success rate over searches issued after fault onset (0 when none).
  double success_rate_after_onset() const;

 private:
  std::uint64_t total_ = 0;
  std::uint64_t successes_ = 0;
  std::uint64_t local_hits_ = 0;
  Seconds fault_onset_ = std::numeric_limits<Seconds>::infinity();
  std::uint64_t after_onset_total_ = 0;
  std::uint64_t after_onset_successes_ = 0;
  RunningStats response_time_;
  RunningStats cost_;
  RunningStats messages_;
  RunningStats results_;
  std::vector<double> response_samples_;
  /// Ascending-sorted view of response_samples_, rebuilt on demand after
  /// adds (empty = stale). Mutable: sorting is a cache fill, not a
  /// logical state change.
  mutable std::vector<double> sorted_samples_;
};

}  // namespace asap::metrics
