// System-load reduction (paper §V-B, Figs 7-10).
//
// The paper defines system load as all search-triggered P2P traffic,
// reported as bandwidth per live node per second: baselines count query
// messages; ASAP counts ad deliveries plus search traffic (confirmations
// and ads requests). This reducer combines a BandwidthLedger with the live
// node count series into the per-second load series, its mean and standard
// deviation, and the per-category breakdown.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/bandwidth.hpp"

namespace asap::metrics {

struct LoadSummary {
  double mean_bytes_per_node_per_sec = 0.0;
  double stddev_bytes_per_node_per_sec = 0.0;
  double peak_bytes_per_node_per_sec = 0.0;
  std::vector<double> series;  // one value per second in the window
};

/// Reduces the ledger over [window_start, window_end) seconds.
/// @param categories   traffic categories that count toward load
/// @param live_counts  average live node count per second (index = second)
LoadSummary reduce_load(const sim::BandwidthLedger& ledger,
                        std::span<const sim::Traffic> categories,
                        std::span<const double> live_counts,
                        std::uint32_t window_start, std::uint32_t window_end);

/// Per-category byte totals over the window plus their share of the sum
/// (Fig 7 breakdown).
struct CategoryShare {
  sim::Traffic category;
  Bytes bytes = 0;
  double share = 0.0;
};
std::vector<CategoryShare> category_breakdown(
    const sim::BandwidthLedger& ledger,
    std::span<const sim::Traffic> categories, std::uint32_t window_start,
    std::uint32_t window_end);

}  // namespace asap::metrics
