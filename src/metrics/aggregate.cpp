#include "metrics/aggregate.hpp"

namespace asap::metrics {

MetricSummary summarize(const RunningStats& s) {
  MetricSummary out;
  out.count = s.count();
  out.mean = s.mean();
  out.stddev = s.stddev();
  out.min = s.min();
  out.max = s.max();
  return out;
}

void TrialAggregator::add(std::string_view name, double value) {
  for (auto& [k, stats] : metrics_) {
    if (k == name) {
      stats.add(value);
      return;
    }
  }
  metrics_.emplace_back(std::string(name), RunningStats{});
  metrics_.back().second.add(value);
}

std::uint64_t TrialAggregator::count(std::string_view name) const {
  for (const auto& [k, stats] : metrics_) {
    if (k == name) return stats.count();
  }
  return 0;
}

std::vector<std::pair<std::string, MetricSummary>> TrialAggregator::summaries()
    const {
  std::vector<std::pair<std::string, MetricSummary>> out;
  out.reserve(metrics_.size());
  for (const auto& [k, stats] : metrics_) {
    out.emplace_back(k, summarize(stats));
  }
  return out;
}

}  // namespace asap::metrics
