#include "metrics/load_series.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace asap::metrics {

LoadSummary reduce_load(const sim::BandwidthLedger& ledger,
                        std::span<const sim::Traffic> categories,
                        std::span<const double> live_counts,
                        std::uint32_t window_start,
                        std::uint32_t window_end) {
  ASAP_REQUIRE(window_end > window_start, "empty load window");
  window_end = std::min(window_end, ledger.buckets());
  const auto combined = ledger.combined_series(categories);

  LoadSummary out;
  RunningStats stats;
  out.series.reserve(window_end - window_start);
  for (std::uint32_t s = window_start; s < window_end; ++s) {
    const double live =
        s < live_counts.size() ? live_counts[s] : live_counts.back();
    const double load =
        live > 0.0 ? static_cast<double>(combined[s]) / live : 0.0;
    out.series.push_back(load);
    stats.add(load);
  }
  out.mean_bytes_per_node_per_sec = stats.mean();
  // The window's buckets ARE the whole population being described (every
  // second of the measurement window), so no Bessel correction here.
  out.stddev_bytes_per_node_per_sec = stats.population_stddev();
  out.peak_bytes_per_node_per_sec = stats.max();
  return out;
}

std::vector<CategoryShare> category_breakdown(
    const sim::BandwidthLedger& ledger,
    std::span<const sim::Traffic> categories, std::uint32_t window_start,
    std::uint32_t window_end) {
  window_end = std::min(window_end, ledger.buckets());
  std::vector<CategoryShare> out;
  Bytes total = 0;
  for (sim::Traffic c : categories) {
    const auto series = ledger.series(c);
    Bytes sum = 0;
    for (std::uint32_t s = window_start; s < window_end; ++s) sum += series[s];
    out.push_back({c, sum, 0.0});
    total += sum;
  }
  if (total > 0) {
    for (auto& cs : out) {
      cs.share = static_cast<double>(cs.bytes) / static_cast<double>(total);
    }
  }
  return out;
}

}  // namespace asap::metrics
