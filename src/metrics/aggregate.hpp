// Cross-trial aggregation for repeated-seed experiments.
//
// The matrix runner replays every (algorithm × topology) cell over several
// independently-seeded trials; this module reduces each headline metric's
// per-trial samples into mean ± stddev (plus min/max), which is what the
// paper's error bars and the golden-metrics gate both consume.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace asap::metrics {

/// One aggregated metric across trials. stddev is the Bessel-corrected
/// sample standard deviation (denominator n-1, matching
/// RunningStats::stddev) — trials are draws from the seed population, not
/// the population itself; 0 for a single trial.
struct MetricSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

MetricSummary summarize(const RunningStats& s);

/// Accumulates a fixed set of named metrics over repeated trials,
/// preserving first-insertion order (so reports and JSON stay stable).
class TrialAggregator {
 public:
  void add(std::string_view name, double value);

  /// Number of samples for the named metric (0 when unknown).
  std::uint64_t count(std::string_view name) const;

  /// All metrics in first-insertion order.
  std::vector<std::pair<std::string, MetricSummary>> summaries() const;

 private:
  // Linear scan: a cell aggregates ~10 metrics, far below map break-even.
  std::vector<std::pair<std::string, RunningStats>> metrics_;
};

}  // namespace asap::metrics
