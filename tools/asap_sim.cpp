// asap_sim — the command-line front end to the whole suite.
//
// Runs any subset of the systems under test on any topology/preset with
// every protocol knob exposed, prints the paper's metrics, and optionally
// emits CSV for plotting.
//
//   asap_sim --algo asap-rw,flooding --topology crawled --queries 4000
//   asap_sim --preset paper --algo all --jobs 4 --csv results.csv
//   asap_sim --algo asap-rw --m0 1500 --refresh-period 60 --hops 2
//   asap_sim --matrix --algo all --trials 8 --jobs 8 --json results.json
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "faults/fault_config.hpp"
#include "harness/matrix_runner.hpp"
#include "harness/replay.hpp"
#include "harness/world.hpp"
#include "obs/observer.hpp"

namespace {

using namespace asap;

struct CliArgs {
  harness::Preset preset = harness::Preset::kSmall;
  std::vector<harness::TopologyKind> topologies{
      harness::TopologyKind::kCrawled};
  std::vector<harness::AlgoKind> algos{harness::AlgoKind::kFlooding,
                                       harness::AlgoKind::kAsapRw};
  std::uint64_t seed = 42;
  std::uint32_t queries = 0;  // 0 = preset default
  std::size_t jobs = 0;
  std::size_t shards = 1;  // event-loop shards per run (0 = auto)
  std::uint32_t scale = 0;   // node-count override (0 = preset default)
  bool stream_trace = false;  // force on-demand trace synthesis
  std::string csv_path;
  bool audit = false;

  // Fault scenarios (faults/fault_config.hpp): preset names or JSON paths.
  // Empty = faults off. Plain mode takes one scenario; matrix mode sweeps
  // a comma-separated list as an extra axis.
  std::vector<faults::FaultScenario> fault_scenarios;

  // Matrix mode (harness/matrix_runner.hpp).
  bool matrix = false;
  std::uint32_t trials = 1;
  std::string json_path;

  // Observability (obs/observer.hpp). Tracing observes exactly one run,
  // so these require a single (topology, algo) pair — and one trial in
  // matrix mode.
  std::string trace_out;
  std::uint64_t trace_sample = 1;
  std::string counters_out;
  double counters_period = 60.0;

  bool tracing() const {
    return !trace_out.empty() || !counters_out.empty();
  }

  // Defense override (--trust on|off): tri-state like MatrixSpec::trust.
  // Unset leaves each fault scenario's own defense knobs alone.
  std::optional<bool> trust;

  // ASAP overrides (applied to every ASAP variant in the run).
  std::optional<std::uint64_t> m0;
  std::optional<double> refresh_period;
  std::optional<std::uint32_t> cache_capacity;
  std::optional<std::uint32_t> hops;
  std::optional<std::uint32_t> results_needed;
  std::optional<bool> refresh_pull;
};

harness::AlgoKind parse_algo(const std::string& name) {
  if (name == "flooding") return harness::AlgoKind::kFlooding;
  if (name == "random-walk" || name == "rw") {
    return harness::AlgoKind::kRandomWalk;
  }
  if (name == "gsa") return harness::AlgoKind::kGsa;
  if (name == "asap-fld") return harness::AlgoKind::kAsapFld;
  if (name == "asap-rw") return harness::AlgoKind::kAsapRw;
  if (name == "asap-gsa") return harness::AlgoKind::kAsapGsa;
  if (name == "asap-adaptive") return harness::AlgoKind::kAsapAdaptive;
  if (name == "asap-delta") return harness::AlgoKind::kAsapDelta;
  throw ConfigError("unknown algorithm: " + name +
                    " (try flooding, random-walk, gsa, asap-fld, asap-rw, "
                    "asap-gsa, asap-adaptive, asap-delta, all)");
}

std::vector<std::string> split_csv(const std::string& list) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const auto comma = list.find(',', pos);
    out.push_back(list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

void print_usage() {
  std::cout <<
      R"(asap_sim — ASAP P2P search simulator

  --preset small|paper        world scale (default small)
  --topology t1,t2            random, powerlaw, crawled (default crawled)
  --algo a1,a2 | all          flooding, random-walk, gsa, asap-fld,
                              asap-rw, asap-gsa (default flooding,asap-rw;
                              "all" = those six). asap-adaptive and
                              asap-delta (byte-budgeted packed ad rounds)
                              must be named explicitly.
  --seed N                    master seed (default 42)
  --queries N                 override query count
  --jobs N                    parallel cells (default: hardware)
  --shards N                  event-loop shards per run (default 1;
                              0 = hardware). Run digests are bit-identical
                              across shard counts (DESIGN.md section 14)
  --scale N                   re-dimension the world to N peers (the scale
                              axis, DESIGN.md section 15); >= 100k nodes
                              auto-enable streaming trace synthesis
  --stream-trace              synthesize trace events on demand instead of
                              materializing them (bit-identical digests;
                              forced on by --scale >= 100k)
  --csv FILE                  also write results as CSV
  --audit                     run the simulation invariant auditor; any
                              violation is reported and exits nonzero
  --faults SPEC[,SPEC...]     deterministic fault injection (DESIGN.md
                              sections 11 and 16). Each SPEC is a preset —
                              none, churn, lossy, partition, burst, chaos,
                              polluted, polluted-open, storm, storm-open,
                              byzantine — or a path to a JSON scenario
                              file. Plain mode takes one SPEC; matrix mode
                              sweeps the list as an extra result axis.
                              Unknown presets exit nonzero with the
                              available list.
  --trust on|off              defense override for every fault scenario
                              (DESIGN.md section 16): "on" arms trust
                              scoring, strike-per-chain and the 0.65 ad
                              fill gate; "off" strips trust AND overload
                              protection (the defense-off control arm).
                              Default: each scenario's own knobs.

Matrix mode (repeated-seed sweeps, results.json):
  --matrix                    fan (algo x topology x trial) out across the
                              pool and report mean +/- stddev over trials;
                              trial k runs with seed ^ trial_seed_salt(k)
  --trials N                  trials per cell (default 1)
  --json FILE                 write machine-readable results
                              (schema: docs/RESULTS_SCHEMA.md)

Observability (single topology + algorithm only; DESIGN.md section 9):
  --trace-out FILE            JSONL event trace (query/ad/confirm/churn
                              spans); provably passive — the run digest is
                              identical with and without it
  --trace-sample N            keep every Nth trace record per kind
                              (default 1 = keep all)
  --counters-out FILE         JSONL counter snapshots on a virtual-time
                              cadence, plus final per-node rows
  --counters-period SECONDS   snapshot cadence (default 60)

ASAP protocol overrides:
  --m0 N                      ad budget unit M0
  --refresh-period SECONDS    refresh beacon period
  --cache-capacity N          ads cache entries per node
  --hops N                    ads-request radius h
  --results-needed N          positive confirmations wanted per search
  --refresh-pull on|off       pull-on-refresh extension
)";
}

CliArgs parse(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw ConfigError("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") {
      print_usage();
      std::exit(0);
    } else if (flag == "--preset") {
      const auto v = next();
      if (v == "paper") {
        args.preset = harness::Preset::kPaper;
      } else if (v == "small") {
        args.preset = harness::Preset::kSmall;
      } else {
        throw ConfigError("unknown preset: " + v);
      }
    } else if (flag == "--topology") {
      args.topologies.clear();
      for (const auto& t : split_csv(next())) {
        if (t == "random") {
          args.topologies.push_back(harness::TopologyKind::kRandom);
        } else if (t == "powerlaw") {
          args.topologies.push_back(harness::TopologyKind::kPowerlaw);
        } else if (t == "crawled") {
          args.topologies.push_back(harness::TopologyKind::kCrawled);
        } else {
          throw ConfigError("unknown topology: " + t);
        }
      }
    } else if (flag == "--algo") {
      args.algos.clear();
      const auto list = next();
      if (list == "all") {
        args.algos.assign(std::begin(harness::kAllAlgos),
                          std::end(harness::kAllAlgos));
      } else {
        for (const auto& a : split_csv(list)) {
          args.algos.push_back(parse_algo(a));
        }
      }
    } else if (flag == "--seed") {
      args.seed = std::stoull(next());
    } else if (flag == "--queries") {
      args.queries = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--jobs") {
      args.jobs = std::stoul(next());
    } else if (flag == "--shards") {
      args.shards = std::stoul(next());
    } else if (flag == "--scale") {
      args.scale = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--stream-trace") {
      args.stream_trace = true;
    } else if (flag == "--csv") {
      args.csv_path = next();
    } else if (flag == "--audit") {
      args.audit = true;
    } else if (flag == "--faults") {
      args.fault_scenarios.clear();
      for (const auto& s : split_csv(next())) {
        args.fault_scenarios.push_back(faults::scenario_from_spec(s));
      }
    } else if (flag == "--trust") {
      const std::string v = next();
      if (v != "on" && v != "off") {
        throw ConfigError("--trust takes on|off");
      }
      args.trust = (v == "on");
    } else if (flag == "--matrix") {
      args.matrix = true;
    } else if (flag == "--trials") {
      args.trials = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--json") {
      args.json_path = next();
    } else if (flag == "--trace-out") {
      args.trace_out = next();
    } else if (flag == "--trace-sample") {
      args.trace_sample = std::stoull(next());
      if (args.trace_sample == 0) {
        throw ConfigError("--trace-sample must be >= 1");
      }
    } else if (flag == "--counters-out") {
      args.counters_out = next();
    } else if (flag == "--counters-period") {
      args.counters_period = std::stod(next());
      if (args.counters_period <= 0.0) {
        throw ConfigError("--counters-period must be positive");
      }
    } else if (flag == "--m0") {
      args.m0 = std::stoull(next());
    } else if (flag == "--refresh-period") {
      args.refresh_period = std::stod(next());
    } else if (flag == "--cache-capacity") {
      args.cache_capacity = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--hops") {
      args.hops = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--results-needed") {
      args.results_needed = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--refresh-pull") {
      args.refresh_pull = next() == "on";
    } else {
      throw ConfigError("unknown flag: " + flag + " (see --help)");
    }
  }
  return args;
}

harness::RunOptions options_for(const CliArgs& args, harness::AlgoKind kind) {
  harness::RunOptions opts;
  opts.audit = opts.audit || args.audit;
  opts.engine_tuning.shards = args.shards;
  if (!harness::is_asap(kind)) return opts;
  auto p = harness::default_asap_params(kind, args.preset);
  if (args.m0) p.budget_unit_m0 = *args.m0;
  if (args.refresh_period) p.refresh_period = *args.refresh_period;
  if (args.cache_capacity) p.cache_capacity = *args.cache_capacity;
  if (args.hops) p.ads_request_hops = *args.hops;
  if (args.results_needed) p.results_needed = *args.results_needed;
  if (args.refresh_pull) p.refresh_pull = *args.refresh_pull;
  opts.asap = p;
  return opts;
}

/// Owns the output streams and observer of one traced run. Tracing
/// observes exactly one simulation, so callers must first pass
/// require_single_run_for_tracing().
struct TraceSession {
  std::ofstream trace_file;
  std::ofstream counters_file;
  std::optional<obs::RunObserver> observer;

  explicit TraceSession(const CliArgs& args) {
    obs::ObsConfig cfg;
    if (!args.trace_out.empty()) {
      trace_file.open(args.trace_out);
      if (!trace_file) throw ConfigError("cannot write " + args.trace_out);
      cfg.trace_out = &trace_file;
      cfg.trace_sample = args.trace_sample;
    }
    if (!args.counters_out.empty()) {
      counters_file.open(args.counters_out);
      if (!counters_file) {
        throw ConfigError("cannot write " + args.counters_out);
      }
      cfg.counters_out = &counters_file;
    }
    cfg.snapshot_period = args.counters_period;
    observer.emplace(cfg);
  }

  void report(const CliArgs& args) const {
    if (!args.trace_out.empty()) {
      std::cout << "wrote " << args.trace_out << " ("
                << observer->trace_records_written() << " records)\n";
    }
    if (!args.counters_out.empty()) {
      std::cout << "wrote " << args.counters_out << '\n';
    }
  }
};

void require_single_run_for_tracing(const CliArgs& args) {
  if (!args.tracing()) return;
  if (args.topologies.size() != 1 || args.algos.size() != 1 ||
      (args.matrix && args.trials != 1)) {
    throw ConfigError(
        "--trace-out/--counters-out observe a single run: use exactly one "
        "--topology and one --algo (and --trials 1 in matrix mode)");
  }
}

/// "12.3±4.5"-style cell for the aggregate table.
std::string pm(const asap::metrics::MetricSummary& s, double scale,
               int precision) {
  return TextTable::num(scale * s.mean, precision) + "±" +
         TextTable::num(scale * s.stddev, precision);
}

const asap::metrics::MetricSummary& metric(
    const harness::CellAggregate& cell, const std::string& name) {
  for (const auto& [k, v] : cell.metrics) {
    if (k == name) return v;
  }
  throw InvariantError("matrix cell is missing metric " + name);
}

int run_matrix_mode(const CliArgs& args) {
  harness::MatrixSpec spec;
  spec.preset = args.preset;
  spec.topologies = args.topologies;
  spec.algos = args.algos;
  spec.seed = args.seed;
  spec.trials = args.trials;
  spec.jobs = args.jobs;
  spec.queries = args.queries;
  spec.scale = args.scale;
  spec.stream_trace = args.stream_trace;
  spec.options.audit = args.audit;
  spec.options.engine_tuning.shards = args.shards;
  if (!args.fault_scenarios.empty()) {
    spec.fault_scenarios = args.fault_scenarios;
  }
  spec.trust = args.trust;
  std::optional<TraceSession> session;
  if (args.tracing()) session.emplace(args);
  obs::RunObserver* observer = session ? &*session->observer : nullptr;
  spec.options.observer = observer;  // run_matrix re-checks the 1-cell rule
  spec.options_for = [&args, observer](harness::AlgoKind kind) {
    auto opts = options_for(args, kind);
    opts.observer = observer;
    return opts;
  };
  spec.verbose = true;

  const auto result = harness::run_matrix(spec);
  if (session) session->report(args);

  TextTable table({"topology", "faults", "algorithm", "trials", "success %",
                   "resp ms", "cost/search", "load B/node/s", "digest[0]"});
  for (const auto& cell : result.cells) {
    table.add_row({harness::topology_name(cell.topology), cell.scenario,
                   harness::algo_name(cell.algo),
                   std::to_string(cell.trials),
                   pm(metric(cell, "success_rate"), 100.0, 1),
                   pm(metric(cell, "avg_response_s"), 1e3, 1),
                   pm(metric(cell, "avg_cost_bytes"), 1.0, 0),
                   pm(metric(cell, "load_mean_Bps"), 1.0, 1),
                   asap::json::hex_u64(cell.digests.front())});
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nmatrix digest " << asap::json::hex_u64(result.matrix_digest)
            << " (" << result.trials.size() << " trials, "
            << TextTable::num(result.wall_seconds, 1) << " s wall)\n";

  if (!args.json_path.empty()) {
    std::ofstream json_out(args.json_path);
    if (!json_out) throw ConfigError("cannot write " + args.json_path);
    harness::write_results_json(result, json_out);
    std::cout << "wrote " << args.json_path << '\n';
  }

  std::uint64_t total_violations = 0;
  for (const auto& run : result.trials) {
    if (!run.result.audited || run.result.audit_violations == 0) continue;
    total_violations += run.result.audit_violations;
    std::cerr << "audit: " << run.result.audit_violations
              << " violation(s) in " << run.result.algo << " on "
              << harness::topology_name(run.topology) << " trial "
              << run.trial << '\n';
    for (const auto& msg : run.result.audit_messages) {
      std::cerr << "  - " << msg << '\n';
    }
  }
  if (total_violations > 0) {
    std::cerr << "audit failed: " << total_violations
              << " total violation(s)\n";
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args = parse(argc, argv);
    require_single_run_for_tracing(args);
    if (args.matrix) return run_matrix_mode(args);
    if (args.fault_scenarios.size() > 1) {
      throw ConfigError(
          "plain mode runs one fault scenario; use --matrix to sweep a "
          "--faults list");
    }

    std::optional<TraceSession> session;
    if (args.tracing()) session.emplace(args);

    struct Row {
      harness::TopologyKind topo;
      harness::RunResult res;
      double p50 = 0.0, p95 = 0.0;
    };
    std::vector<Row> rows;
    std::mutex mu;

    for (const auto topo : args.topologies) {
      auto cfg = harness::ExperimentConfig::make(args.preset, topo, args.seed);
      if (args.queries != 0) cfg.trace.num_queries = args.queries;
      if (args.scale != 0) cfg.apply_scale(args.scale);
      if (args.stream_trace) cfg.stream_trace = true;
      std::cerr << "building " << harness::topology_name(topo)
                << " world (" << cfg.content.initial_nodes << " peers, "
                << cfg.trace.num_queries << " queries"
                << (cfg.stream_trace ? ", streaming trace" : "") << ")...\n";
      const auto world = harness::build_world(cfg);

      ThreadPool pool(args.jobs);
      std::vector<std::future<void>> futs;
      for (const auto kind : args.algos) {
        futs.push_back(pool.submit([&, kind] {
          auto opts = options_for(args, kind);
          if (!args.fault_scenarios.empty() &&
              args.fault_scenarios.front().config.any()) {
            faults::FaultConfig fc = args.fault_scenarios.front().config;
            if (args.trust.has_value()) {
              if (*args.trust) {
                fc.trust_enabled = true;
                fc.strike_per_chain = true;
                if (fc.trust_fill_gate <= 0.0) fc.trust_fill_gate = 0.65;
              } else {
                fc.trust_enabled = false;
                fc.strike_per_chain = false;
                fc.trust_fill_gate = 0.0;
                fc.pending_query_cap = 0;
                fc.ttl_clamp_depth = 0;
              }
            }
            opts.faults = fc;
          }
          // Safe across the pool: tracing is restricted to one algorithm
          // and one topology, so at most one run sees the observer.
          if (session) opts.observer = &*session->observer;
          auto res = harness::run_experiment(world, kind, opts);
          std::cerr << "  " << res.algo << " done ("
                    << TextTable::num(res.wall_seconds, 1) << " s, "
                    << res.engine_events << " engine events, digest "
                    << std::hex << res.digest << std::dec << ")\n";
          Row row{topo, std::move(res)};
          const auto& samples = row.res.search.response_samples();
          if (!samples.empty()) {
            row.p50 = percentile(samples, 0.50);
            row.p95 = percentile(samples, 0.95);
          }
          std::lock_guard lock(mu);
          rows.push_back(std::move(row));
        }));
      }
      for (auto& f : futs) f.get();
    }

    std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
      return static_cast<int>(a.topo) < static_cast<int>(b.topo);
    });

    TextTable table({"topology", "algorithm", "success %", "resp ms",
                     "p50 ms", "p95 ms", "cost/search", "results/search",
                     "load B/node/s", "load stddev"});
    for (const auto& row : rows) {
      const auto& s = row.res.search;
      table.add_row({harness::topology_name(row.topo), row.res.algo,
                     TextTable::num(100.0 * s.success_rate(), 1),
                     TextTable::num(1e3 * s.avg_response_time(), 1),
                     TextTable::num(1e3 * row.p50, 1),
                     TextTable::num(1e3 * row.p95, 1),
                     TextTable::bytes(s.avg_cost_bytes()),
                     TextTable::num(s.avg_results(), 2),
                     TextTable::num(row.res.load.mean_bytes_per_node_per_sec,
                                    1),
                     TextTable::num(
                         row.res.load.stddev_bytes_per_node_per_sec, 1)});
    }
    std::cout << '\n';
    table.print(std::cout);

    if (!args.fault_scenarios.empty() &&
        args.fault_scenarios.front().config.any()) {
      std::cout << "\nfault scenario '" << args.fault_scenarios.front().name
                << "':\n";
      for (const auto& row : rows) {
        const auto& f = row.res.faults;
        const auto& c = row.res.asap_counters;
        std::cout << "  " << harness::topology_name(row.topo) << " / "
                  << row.res.algo << ": " << f.crashes << " crashes, "
                  << (f.link_drops + f.burst_drops + f.partition_drops)
                  << " fault drops, " << f.dead_sends << " dead sends, "
                  << c.confirm_retries << " confirm retries, "
                  << c.stale_evictions << " stale evictions, success under "
                  << "churn "
                  << TextTable::num(100.0 * f.success_rate_after_onset, 1)
                  << "% over " << f.queries_after_onset << " queries\n";
      }
    }

    std::uint64_t total_violations = 0;
    for (const auto& row : rows) {
      if (!row.res.audited || row.res.audit_violations == 0) continue;
      total_violations += row.res.audit_violations;
      std::cerr << "\naudit: " << row.res.audit_violations
                << " violation(s) in " << row.res.algo << " on "
                << harness::topology_name(row.topo) << ":\n";
      for (const auto& msg : row.res.audit_messages) {
        std::cerr << "  - " << msg << '\n';
      }
    }

    if (!args.csv_path.empty()) {
      std::ofstream csv(args.csv_path);
      if (!csv) throw ConfigError("cannot write " + args.csv_path);
      csv << "topology,algorithm,success_rate,avg_response_s,p50_s,p95_s,"
             "avg_cost_bytes,avg_results,load_mean,load_stddev,digest\n";
      for (const auto& row : rows) {
        const auto& s = row.res.search;
        csv << harness::topology_name(row.topo) << ',' << row.res.algo << ','
            << s.success_rate() << ',' << s.avg_response_time() << ','
            << row.p50 << ',' << row.p95 << ',' << s.avg_cost_bytes() << ','
            << s.avg_results() << ','
            << row.res.load.mean_bytes_per_node_per_sec << ','
            << row.res.load.stddev_bytes_per_node_per_sec << ','
            << std::hex << row.res.digest << std::dec << '\n';
      }
      std::cout << "\nwrote " << args.csv_path << '\n';
    }
    if (session) session->report(args);
    if (total_violations > 0) {
      std::cerr << "\naudit failed: " << total_violations
                << " total violation(s)\n";
      return 2;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
