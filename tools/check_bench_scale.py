#!/usr/bin/env python3
"""Check a BENCH_scale.json produced by bench_scale --json.

Usage: check_bench_scale.py [--enforce] FILE

Default mode validates structure only: every row carries the full field
set with sane values, scales are ascending, and every scale has a
random-walk row. That is the gate for a freshly generated CI report,
whose absolute timings are noise.

--enforce additionally pins the ISSUE 9 acceptance numbers on the
*committed* report (measured at optimization time, deterministic to
re-check):
  * a 1,000,000-node row exists,
  * its overlay + node-state footprint is <= MAX_BYTES_PER_NODE
    bytes per node,
  * every row at >= STREAMING_FLOOR nodes ran with streaming trace
    synthesis (no materialized event vector),
  * the 1M world build stayed under MAX_BUILD_SECONDS (catches an
    accidental O(n^2) regression in a generator, with a wide margin
    for slow machines).
"""
import json
import sys

NUM = (int, float)

# ISSUE 9 acceptance: a million-node world holds overlay + node state in
# <= ~150 bytes per node.
MAX_BYTES_PER_NODE = 150.0
MILLION = 1_000_000
# apply_scale() turns streaming synthesis on at 100k nodes and up.
STREAMING_FLOOR = 100_000
# 1M world build wall-clock ceiling (generous: ~20x the measured value).
MAX_BUILD_SECONDS = 600.0

REQUIRED_FIELDS = {
    "scale": NUM,
    "nodes": NUM,
    "algo": str,
    "queries": NUM,
    "streaming": bool,
    "world_build_seconds": NUM,
    "run_wall_seconds": NUM,
    "engine_events": NUM,
    "events_per_sec": NUM,
    "ns_per_event": NUM,
    "overlay_bytes": NUM,
    "state_bytes": NUM,
    "bytes_per_node": NUM,
    "peak_rss_bytes": NUM,
    "digest": str,
}


def fail(msg):
    print(f"check_bench_scale: FAIL: {msg}")
    sys.exit(1)


def check_row(i, row):
    for field, ty in REQUIRED_FIELDS.items():
        if field not in row:
            fail(f"row {i}: missing field {field!r}")
        if not isinstance(row[field], ty):
            fail(f"row {i}: field {field!r} has type "
                 f"{type(row[field]).__name__}")
    if row["scale"] <= 0 or row["nodes"] <= 0:
        fail(f"row {i}: non-positive scale/nodes")
    if row["nodes"] != row["scale"]:
        fail(f"row {i}: nodes != scale")
    if row["world_build_seconds"] <= 0 or row["run_wall_seconds"] <= 0:
        fail(f"row {i}: non-positive timings")
    if row["overlay_bytes"] <= 0:
        fail(f"row {i}: overlay_bytes must be positive")
    if row["bytes_per_node"] < 0 or row["peak_rss_bytes"] < 0:
        fail(f"row {i}: negative memory figure")
    if not row["digest"].startswith("0x"):
        fail(f"row {i}: digest must be a 0x hex string")
    int(row["digest"], 16)  # throws on malformed hex


def main():
    argv = sys.argv[1:]
    enforce = "--enforce" in argv
    argv = [a for a in argv if a != "--enforce"]
    if len(argv) != 1:
        print(__doc__)
        sys.exit(2)

    with open(argv[0]) as f:
        doc = json.load(f)

    if doc.get("schema") != "asap.bench_scale.v1":
        fail(f"unexpected schema {doc.get('schema')!r}")
    rows = doc.get("rows")
    if not isinstance(rows, list) or not rows:
        fail("rows must be a non-empty array")

    for i, row in enumerate(rows):
        check_row(i, row)

    scales = sorted({int(r["scale"]) for r in rows})
    by_scale = {s: [r for r in rows if r["scale"] == s] for s in scales}
    for s, srows in by_scale.items():
        if not any(r["algo"] == "random-walk" for r in srows):
            fail(f"scale {s}: no random-walk row")
        for r in srows:
            want_stream = s >= STREAMING_FLOOR
            if r["streaming"] != want_stream:
                fail(f"scale {s} ({r['algo']}): streaming={r['streaming']}, "
                     f"expected {want_stream}")

    if enforce:
        if MILLION not in by_scale:
            fail("--enforce: no 1,000,000-node row")
        rw = [r for r in by_scale[MILLION] if r["algo"] == "random-walk"]
        row = rw[0]
        if row["bytes_per_node"] > MAX_BYTES_PER_NODE:
            fail(f"--enforce: 1M bytes_per_node {row['bytes_per_node']:.1f} "
                 f"> budget {MAX_BYTES_PER_NODE}")
        if row["world_build_seconds"] > MAX_BUILD_SECONDS:
            fail(f"--enforce: 1M world build took "
                 f"{row['world_build_seconds']:.1f}s "
                 f"> ceiling {MAX_BUILD_SECONDS}")
        print(f"check_bench_scale: OK (enforced: 1M row at "
              f"{row['bytes_per_node']:.1f} B/node, built in "
              f"{row['world_build_seconds']:.1f}s, "
              f"{len(rows)} rows over scales {scales})")
    else:
        print(f"check_bench_scale: OK ({len(rows)} rows over "
              f"scales {scales})")


if __name__ == "__main__":
    main()
