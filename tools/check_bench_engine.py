#!/usr/bin/env python3
"""Check a BENCH_engine.json produced by bench_micro_engine --json.

Usage: check_bench_engine.py [--enforce-speedup] FILE

Default mode validates structure only: CI runners have noisy clocks, so
the gate for a freshly generated report is "the bench ran and produced a
well-formed report with every depth/closure cell present exactly once".

--enforce-speedup additionally requires at least one cell at depth >=
65536 to show >= MIN_DEEP_SPEEDUP. That mode is applied to the
*committed* BENCH_engine.json (measured numbers recorded at optimization
time, deterministic to re-check), never to a fresh CI run.
"""
import json
import sys

NUM = (int, float)
DEPTHS = (1024, 16384, 65536, 262144, 1048576)
CLOSURES = ("inline", "pooled")
EXPECTED_CELLS = {(d, c) for d in DEPTHS for c in CLOSURES}

# ISSUE 6 acceptance: >= 3x ns/event improvement over the seed engine
# (4-ary heap + std::function) at a queue depth of at least 64k.
MIN_DEEP_SPEEDUP = 3.0
DEEP_DEPTH = 65536


def fail(msg):
    sys.exit(f"BENCH_engine error: {msg}")


def check(path, enforce_speedup):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"not valid JSON: {e}")
    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("schema") != "asap.bench_engine.v1":
        fail(f"unknown schema {doc.get('schema')!r}")
    for field in ("release_build", "audit_build"):
        if not isinstance(doc.get(field), bool):
            fail(f"field {field!r} missing or not a bool")
    if doc.get("unit") != "ns_per_event":
        fail(f"unexpected unit {doc.get('unit')!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("'results' missing or empty")
    seen = set()
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            fail(f"results[{i}] is not an object")
        if row.get("bench") != "engine_hold":
            fail(f"results[{i}]: unknown bench {row.get('bench')!r}")
        depth = row.get("depth")
        closure = row.get("closure")
        if depth not in DEPTHS:
            fail(f"results[{i}]: unexpected depth {depth!r}")
        if closure not in CLOSURES:
            fail(f"results[{i}]: unexpected closure {closure!r}")
        if (depth, closure) in seen:
            fail(f"results[{i}]: duplicate cell ({depth}, {closure})")
        seen.add((depth, closure))
        for field in ("seed_ns_per_event", "engine_ns_per_event", "speedup"):
            value = row.get(field)
            if not isinstance(value, NUM) or isinstance(value, bool):
                fail(f"results[{i}]: field {field!r} missing or not a number")
            if value <= 0:
                fail(f"results[{i}]: field {field!r} must be positive, "
                     f"got {value!r}")
    missing = EXPECTED_CELLS - seen
    if missing:
        fail(f"missing cells: {sorted(missing)}")
    deep = [r["speedup"] for r in results if r["depth"] >= DEEP_DEPTH]
    best_deep = max(deep)
    if enforce_speedup and best_deep < MIN_DEEP_SPEEDUP:
        fail(f"best speedup at depth >= {DEEP_DEPTH} is {best_deep:.2f}x, "
             f"below the required {MIN_DEEP_SPEEDUP:.1f}x")
    verdict = "threshold OK" if enforce_speedup else "structure OK"
    print(f"{path}: {verdict} ({len(results)} cells, best deep speedup "
          f"{best_deep:.2f}x at depth >= {DEEP_DEPTH})")


def main(argv):
    args = argv[1:]
    enforce = "--enforce-speedup" in args
    args = [a for a in args if a != "--enforce-speedup"]
    if len(args) != 1:
        sys.exit(__doc__.strip())
    check(args[0], enforce)


if __name__ == "__main__":
    main(sys.argv)
