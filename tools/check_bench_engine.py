#!/usr/bin/env python3
"""Check a BENCH_engine.json produced by bench_micro_engine --json.

Usage: check_bench_engine.py [--enforce-speedup] FILE

Default mode validates structure only: CI runners have noisy clocks, so
the gate for a freshly generated report is "the bench ran and produced a
well-formed report with every cell present exactly once and every shard
count on a bit-identical digest".

--enforce-speedup additionally requires
  * at least one engine_hold cell at depth >= 65536 with >=
    MIN_DEEP_SPEEDUP over the seed engine, and
  * when the report was measured on a machine with >=
    SHARD_SPEEDUP_LANES hardware lanes, the 8-shard engine_shard_hold
    cell to show >= MIN_SHARD_SPEEDUP wall-clock speedup over 1 shard
    (a parallel speedup cannot exist on fewer cores, so reports from
    smaller machines pass on digest identity alone and say so).
That mode is applied to the *committed* BENCH_engine.json (measured
numbers recorded at optimization time, deterministic to re-check),
never to a fresh CI run.
"""
import json
import sys

NUM = (int, float)
DEPTHS = (1024, 16384, 65536, 262144, 1048576)
CLOSURES = ("inline", "pooled")
EXPECTED_CELLS = {(d, c) for d in DEPTHS for c in CLOSURES}
SHARD_COUNTS = (1, 2, 4, 8)

# ISSUE 6 acceptance: >= 3x ns/event improvement over the seed engine
# (4-ary heap + std::function) at a queue depth of at least 64k.
MIN_DEEP_SPEEDUP = 3.0
DEEP_DEPTH = 65536

# ISSUE 8 acceptance: >= 2x wall-clock at 8 shards on a 64k-node world,
# enforceable only when the measuring machine actually has 8 lanes.
MIN_SHARD_SPEEDUP = 2.0
SHARD_SPEEDUP_LANES = 8


def fail(msg):
    sys.exit(f"BENCH_engine error: {msg}")


def check_hold_row(i, row, seen):
    depth = row.get("depth")
    closure = row.get("closure")
    if depth not in DEPTHS:
        fail(f"results[{i}]: unexpected depth {depth!r}")
    if closure not in CLOSURES:
        fail(f"results[{i}]: unexpected closure {closure!r}")
    if (depth, closure) in seen:
        fail(f"results[{i}]: duplicate cell ({depth}, {closure})")
    seen.add((depth, closure))
    for field in ("seed_ns_per_event", "engine_ns_per_event", "speedup"):
        value = row.get(field)
        if not isinstance(value, NUM) or isinstance(value, bool):
            fail(f"results[{i}]: field {field!r} missing or not a number")
        if value <= 0:
            fail(f"results[{i}]: field {field!r} must be positive, "
                 f"got {value!r}")


def check_shard_row(i, row, seen):
    shards = row.get("shards")
    if shards not in SHARD_COUNTS:
        fail(f"results[{i}]: unexpected shard count {shards!r}")
    if shards in seen:
        fail(f"results[{i}]: duplicate shard cell {shards}")
    seen.add(shards)
    for field in ("nodes", "events", "wall_seconds", "speedup"):
        value = row.get(field)
        if not isinstance(value, NUM) or isinstance(value, bool):
            fail(f"results[{i}]: field {field!r} missing or not a number")
        if value <= 0:
            fail(f"results[{i}]: field {field!r} must be positive, "
                 f"got {value!r}")
    if row.get("digest_ok") is not True:
        fail(f"results[{i}]: shards={shards} digest mismatch — the sharded "
             f"event loop diverged from the single-shard run")


def check(path, enforce_speedup):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"not valid JSON: {e}")
    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("schema") != "asap.bench_engine.v2":
        fail(f"unknown schema {doc.get('schema')!r}")
    for field in ("release_build", "audit_build"):
        if not isinstance(doc.get(field), bool):
            fail(f"field {field!r} missing or not a bool")
    lanes = doc.get("hardware_lanes")
    if not isinstance(lanes, NUM) or isinstance(lanes, bool) or lanes < 1:
        fail(f"field 'hardware_lanes' missing or not a positive number")
    if doc.get("unit") != "ns_per_event":
        fail(f"unexpected unit {doc.get('unit')!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("'results' missing or empty")
    seen_hold, seen_shards = set(), set()
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            fail(f"results[{i}] is not an object")
        bench = row.get("bench")
        if bench == "engine_hold":
            check_hold_row(i, row, seen_hold)
        elif bench == "engine_shard_hold":
            check_shard_row(i, row, seen_shards)
        else:
            fail(f"results[{i}]: unknown bench {bench!r}")
    missing = EXPECTED_CELLS - seen_hold
    if missing:
        fail(f"missing cells: {sorted(missing)}")
    missing_shards = set(SHARD_COUNTS) - seen_shards
    if missing_shards:
        fail(f"missing shard cells: {sorted(missing_shards)}")

    hold = [r for r in results if r["bench"] == "engine_hold"]
    deep = [r["speedup"] for r in hold if r["depth"] >= DEEP_DEPTH]
    best_deep = max(deep)
    if enforce_speedup and best_deep < MIN_DEEP_SPEEDUP:
        fail(f"best speedup at depth >= {DEEP_DEPTH} is {best_deep:.2f}x, "
             f"below the required {MIN_DEEP_SPEEDUP:.1f}x")

    shard8 = next(r["speedup"] for r in results
                  if r["bench"] == "engine_shard_hold" and r["shards"] == 8)
    if enforce_speedup and lanes >= SHARD_SPEEDUP_LANES:
        if shard8 < MIN_SHARD_SPEEDUP:
            fail(f"8-shard wall-clock speedup is {shard8:.2f}x, below the "
                 f"required {MIN_SHARD_SPEEDUP:.1f}x "
                 f"(measured on {int(lanes)} lanes)")
        shard_note = f"8-shard speedup {shard8:.2f}x OK"
    else:
        shard_note = (f"8-shard speedup {shard8:.2f}x on {int(lanes)} "
                      f"lane(s), digests identical"
                      + ("" if not enforce_speedup else
                         f"; parallel bar waived below "
                         f"{SHARD_SPEEDUP_LANES} lanes"))
    verdict = "threshold OK" if enforce_speedup else "structure OK"
    print(f"{path}: {verdict} ({len(results)} cells, best deep speedup "
          f"{best_deep:.2f}x at depth >= {DEEP_DEPTH}; {shard_note})")


def main(argv):
    args = argv[1:]
    enforce = "--enforce-speedup" in args
    args = [a for a in args if a != "--enforce-speedup"]
    if len(args) != 1:
        sys.exit(__doc__.strip())
    check(args[0], enforce)


if __name__ == "__main__":
    main(sys.argv)
