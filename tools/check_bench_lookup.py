#!/usr/bin/env python3
"""Schema-check a BENCH_lookup.json produced by bench_micro_adcache --json.

Usage: check_bench_lookup.py FILE

Validates structure, not thresholds: CI runners have noisy clocks, so the
gate is "the bench ran and produced a well-formed report", while the
committed BENCH_lookup.json records the reference speedups. Exits nonzero
on any malformed field, on a non-positive timing, or on missing cells
(every entries-count/mix pair must be present exactly once).
"""
import json
import sys

NUM = (int, float)
EXPECTED_CELLS = {(e, m) for e in (256, 1024, 4096) for m in ("hit", "miss")}


def fail(msg):
    sys.exit(f"BENCH_lookup schema error: {msg}")


def check(path):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"not valid JSON: {e}")
    if not isinstance(doc, dict):
        fail("top level is not an object")
    if doc.get("schema") != "asap.bench_lookup.v1":
        fail(f"unknown schema {doc.get('schema')!r}")
    for field in ("release_build", "audit_build"):
        if not isinstance(doc.get(field), bool):
            fail(f"field {field!r} missing or not a bool")
    if doc.get("unit") != "ns_per_lookup":
        fail(f"unexpected unit {doc.get('unit')!r}")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        fail("'results' missing or empty")
    seen = set()
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            fail(f"results[{i}] is not an object")
        if row.get("bench") != "adcache_collect_matches":
            fail(f"results[{i}]: unknown bench {row.get('bench')!r}")
        entries = row.get("entries")
        mix = row.get("mix")
        if entries not in (256, 1024, 4096):
            fail(f"results[{i}]: unexpected entries {entries!r}")
        if mix not in ("hit", "miss"):
            fail(f"results[{i}]: unexpected mix {mix!r}")
        if (entries, mix) in seen:
            fail(f"results[{i}]: duplicate cell ({entries}, {mix})")
        seen.add((entries, mix))
        for field in ("legacy_ns_per_lookup", "hashed_ns_per_lookup",
                      "speedup"):
            value = row.get(field)
            if not isinstance(value, NUM) or isinstance(value, bool):
                fail(f"results[{i}]: field {field!r} missing or not a number")
            if value <= 0:
                fail(f"results[{i}]: field {field!r} must be positive, "
                     f"got {value!r}")
    missing = EXPECTED_CELLS - seen
    if missing:
        fail(f"missing cells: {sorted(missing)}")
    worst = min(r["speedup"] for r in results)
    at_4k = [r["speedup"] for r in results if r["entries"] == 4096]
    print(f"{path}: OK ({len(results)} cells, min speedup {worst:.2f}x, "
          f"4096-entry speedups {', '.join(f'{s:.2f}x' for s in at_4k)})")


def main(argv):
    if len(argv) != 2:
        sys.exit(__doc__.strip())
    check(argv[1])


if __name__ == "__main__":
    main(sys.argv)
