#!/usr/bin/env python3
"""Validate asap_sim observability JSONL files (DESIGN.md section 9).

Usage: validate_trace.py FILE [FILE...]

Each line must be a standalone JSON object whose "type" selects a record
schema. Trace files carry query/ad/confirm/churn spans; counter files
carry counters snapshots and node-counters rows. Exits nonzero on the
first malformed file and prints a per-file record summary otherwise.
"""
import collections
import json
import sys

NUM = (int, float)

# type -> {field: expected python types}; "t" is checked for every record.
SCHEMAS = {
    "query": {
        "node": NUM,
        "success": bool,
        "local_hit": bool,
        "response_s": NUM,
        "bytes": NUM,
        "messages": NUM,
        "results": NUM,
    },
    "ad": {"node": NUM, "kind": str, "messages": NUM, "bytes": NUM},
    "confirm": {"node": NUM, "source": NUM, "outcome": str},
    "churn": {"node": NUM, "transition": str},
    "fault": {"node": NUM, "kind": str},
    "retry": {"node": NUM, "source": NUM, "attempt": NUM},
    "stale-evict": {"node": NUM, "source": NUM},
    "trust-strike": {"node": NUM, "source": NUM, "kind": str},
    "quarantine": {"node": NUM, "source": NUM, "phase": str},
    "query-shed": {"node": NUM, "depth": NUM},
    "ad-round": {"node": NUM, "emitted": NUM, "spilled": NUM, "bytes": NUM},
    "counters": {
        "categories": dict,
        "ads": dict,
        "confirms": dict,
        "faults": dict,
    },
    "node-counters": {
        "node": NUM,
        "ads_stored": NUM,
        "ads_evicted": NUM,
        "ads_invalidated": NUM,
        "confirms_sent": NUM,
        "confirms_positive": NUM,
        "confirms_timed_out": NUM,
        "confirm_retries": NUM,
        "stale_evictions": NUM,
        "trust_strikes": NUM,
        "quarantines": NUM,
        "queries_shed": NUM,
    },
}
# (type, field) -> allowed values; "kind" means different things to "ad"
# and "fault" records, so enums are keyed per record type.
ENUMS = {
    ("ad", "kind"): {"full", "patch", "refresh", "delta", "packed"},
    ("confirm", "outcome"): {"positive", "negative", "timeout"},
    ("churn", "transition"): {"join", "leave", "rejoin"},
    ("fault", "kind"): {
        "crash", "detect", "partition", "heal", "burst", "burst-end",
        "storm", "storm-end",
    },
    ("trust-strike", "kind"): {"false-positive", "timeout", "implausible"},
    ("quarantine", "phase"): {"enter", "exit"},
}


def validate_file(path):
    counts = collections.Counter()
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")

            def fail(msg):
                sys.exit(f"{path}:{lineno}: {msg}\n  {line}")

            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"not valid JSON: {e}")
            if not isinstance(rec, dict):
                fail("record is not a JSON object")
            rtype = rec.get("type")
            schema = SCHEMAS.get(rtype)
            if schema is None:
                fail(f"unknown record type {rtype!r}")
            # node-counters rows are emitted by finalize() without a time.
            if rtype != "node-counters":
                if not isinstance(rec.get("t"), NUM) or rec["t"] < 0:
                    fail("missing or negative virtual time 't'")
            for field, types in schema.items():
                value = rec.get(field)
                # bool is an int subclass; keep numeric fields strict.
                if types is NUM and isinstance(value, bool):
                    fail(f"field {field!r} is a bool, expected a number")
                if not isinstance(value, types):
                    fail(f"field {field!r} missing or mistyped: {value!r}")
                allowed = ENUMS.get((rtype, field))
                if allowed is not None and value not in allowed:
                    fail(f"field {field!r} has unknown value {value!r}")
            counts[rtype] += 1
    if not counts:
        sys.exit(f"{path}: no records")
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    print(f"{path}: OK ({sum(counts.values())} records: {summary})")


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__.strip())
    for path in argv[1:]:
        validate_file(path)


if __name__ == "__main__":
    main(sys.argv)
